//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic SplitMix64 generator behind the `rand` 0.8 API
//! subset this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, `Rng::gen_bool`, and `SliceRandom::choose`. The
//! stream differs from upstream rand, but every consumer in this workspace
//! only relies on *seeded determinism*, not on a particular stream.

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`; `high > low` is required.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss,
                    clippy::cast_possible_wrap)]
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(high > low, "gen_range requires a non-empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = (u128::from(rng.next_u64())) % span;
                (low as i128 + x as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        if low == 0 && high == u64::MAX {
            return rng.next_u64();
        }
        low + rng.next_u64() % (high - low + 1)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    #[allow(clippy::cast_possible_truncation)]
    fn sample_from(self, rng: &mut dyn RngCore) -> usize {
        let (low, high) = (*self.start(), *self.end());
        low + (rng.next_u64() as usize) % (high - low + 1)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 high bits → uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        #[allow(clippy::cast_possible_truncation)]
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..100);
            assert!((-5..100).contains(&x));
            let y = rng.gen_range(0..3u8);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
