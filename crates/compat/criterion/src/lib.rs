//! Offline stand-in for the `criterion` crate.
//!
//! Benches in this workspace author against the criterion API
//! (`benchmark_group`, `bench_with_input`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros). This stand-in runs each
//! routine a small number of timed iterations and prints a one-line
//! summary, so `cargo bench` works offline. Set `CXL_BENCH_ITERS` to raise
//! the iteration count for steadier numbers.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as criterion provides.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Iterations per measured routine (default 3; `CXL_BENCH_ITERS`
/// overrides).
fn iterations() -> u32 {
    std::env::var("CXL_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// The per-routine timing driver handed to bench closures.
pub struct Bencher {
    last: Option<Duration>,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.last = Some(start.elapsed() / self.iters);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benches with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark routine.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { last: None, iters: iterations() };
        f(&mut b);
        self.report(&id.label, b.last);
        self
    }

    /// Run one benchmark routine with an input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher { last: None, iters: iterations() };
        f(&mut b, input);
        self.report(&id.label, b.last);
        self
    }

    fn report(&self, label: &str, elapsed: Option<Duration>) {
        match elapsed {
            Some(d) => {
                let mut line = format!("bench {}/{label}: {:?}/iter", self.name, d);
                if let Some(Throughput::Elements(n)) = self.throughput {
                    let secs = d.as_secs_f64();
                    if secs > 0.0 {
                        let rate = n as f64 / secs;
                        line.push_str(&format!("  ({rate:.0} elem/s)"));
                    }
                }
                println!("{line}");
            }
            None => println!("bench {}/{label}: no measurement", self.name),
        }
    }

    /// Finish the group (a no-op for the stand-in).
    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run one top-level benchmark routine.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { last: None, iters: iterations() };
        f(&mut b);
        match b.last {
            Some(d) => println!("bench {}: {:?}/iter", id.label, d),
            None => println!("bench {}: no measurement", id.label),
        }
        self
    }
}

/// Collect bench functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups, as criterion does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
