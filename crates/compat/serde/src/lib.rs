//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal serialisation facade under the same crate name. Instead of
//! serde's visitor architecture it uses a concrete [`Value`] data model:
//! [`Serialize`] renders a value into a `Value` tree and [`Deserialize`]
//! rebuilds one from it. The companion `serde_derive` proc-macro crate
//! derives both traits for the struct/enum shapes this workspace uses
//! (named-field structs, unit structs, and enums with unit or one-field
//! tuple variants), and the `serde_json` stand-in renders `Value` trees to
//! and from JSON text.
//!
//! The surface is intentionally small; it is not a general serde
//! replacement.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// A serialised value tree (the JSON data model plus an integer split).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialisation error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialisation error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch a struct field from a map value (helper for derived code).
///
/// # Errors
/// Returns an error when `v` is not a map or the field is missing.
pub fn de_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    v.get(name).ok_or_else(|| DeError(format!("missing field `{name}` in {v:?}")))
}

/// Decompose an enum value into `(variant_name, payload)` (helper for
/// derived code). Unit variants serialise as a string, one-field tuple
/// variants as a single-entry map.
///
/// # Errors
/// Returns an error when `v` has neither shape.
pub fn de_variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(DeError(format!("expected enum value, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range"))),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(de_field(v, "secs")?)?;
        let nanos = u64::from_value(de_field(v, "nanos")?)?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!("expected a 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
