//! Derive macros for the offline `serde` stand-in.
//!
//! Because the sandbox has no registry access, `syn`/`quote` are
//! unavailable; this crate parses the item token stream by hand. It
//! supports exactly the shapes the workspace uses:
//!
//! - structs with named fields (optionally generic over type parameters),
//! - unit structs,
//! - enums whose variants are unit or single-field tuple variants.
//!
//! Anything else produces a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum ItemKind {
    /// Named fields.
    Struct(Vec<String>),
    /// No fields.
    UnitStruct,
    /// Variants with their payload shapes.
    Enum(Vec<(String, VariantKind)>),
}

/// Payload shape of one enum variant.
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: ItemKind,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(tt) if is_punct(tt, '#') => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute brackets after `#`, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<T, U>`-style generics, returning the type-parameter names.
fn parse_generics(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.peek() {
        Some(tt) if is_punct(tt, '<') => {
            tokens.next();
        }
        _ => return params,
    }
    let mut depth = 1usize;
    let mut expect_param = true;
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
    }
    params
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, got {other:?}"),
            None => break,
        };
        match tokens.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma. Only `<`/`>`
        // need depth tracking: bracketed groups arrive as single tokens.
        let mut depth = 0usize;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantKind)> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, got {other:?}"),
            None => break,
        };
        let mut kind = VariantKind::Unit;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0usize;
                let mut commas = 0usize;
                for tt in &inner {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
                        _ => {}
                    }
                }
                assert!(
                    commas == 0 && !inner.is_empty(),
                    "serde stand-in derive supports only single-field tuple variants \
                     (variant `{name}`)"
                );
                kind = VariantKind::Newtype;
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                kind = VariantKind::Struct(parse_named_fields(g.stream()));
                tokens.next();
            }
            _ => {}
        }
        variants.push((name, kind));
        match tokens.next() {
            Some(tt) if is_punct(&tt, ',') => {}
            Some(other) => panic!("expected `,` after variant, got {other:?}"),
            None => break,
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    let generics = parse_generics(&mut tokens);
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, generics, kind: ItemKind::Struct(parse_named_fields(g.stream())) }
            }
            Some(tt) if is_punct(&tt, ';') => Item { name, generics, kind: ItemKind::UnitStruct },
            other => panic!(
                "serde stand-in derive supports only named-field or unit structs \
                 (`{name}` body: {other:?})"
            ),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, generics, kind: ItemKind::Enum(parse_variants(g.stream())) }
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounds = item
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = item.generics.join(", ");
        (format!("<{bounds}>"), format!("{}<{args}>", item.name))
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (generics, ty) = impl_header(&item, "Serialize");
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(vec![{entries}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let name = &item.name;
            let arms = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Newtype => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantKind::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    VariantKind::Struct(fields) => {
                        let pattern = fields.join(", ");
                        let entries = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{v} {{ {pattern} }} => ::serde::Value::Map(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (generics, ty) = impl_header(&item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::de_field(__v, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("Ok({name} {{ {inits} }})")
        }
        ItemKind::UnitStruct => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Newtype => format!(
                        "\"{v}\" => {{\n\
                             let __p = __payload.ok_or_else(|| ::serde::DeError(\
                                 \"missing payload for variant {v}\".to_string()))?;\n\
                             Ok({name}::{v}(::serde::Deserialize::from_value(__p)?))\n\
                         }}"
                    ),
                    VariantKind::Unit => format!("\"{v}\" => Ok({name}::{v}),"),
                    VariantKind::Struct(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::de_field(__p, \"{f}\")?)?,"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join("\n");
                        format!(
                            "\"{v}\" => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::DeError(\
                                     \"missing payload for variant {v}\".to_string()))?;\n\
                                 Ok({name}::{v} {{ {inits} }})\n\
                             }}"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let (__name, __payload) = ::serde::de_variant(__v)?;\n\
                 let _ = __payload;\n\
                 match __name {{\n\
                     {arms}\n\
                     __other => Err(::serde::DeError(format!(\
                         \"unknown variant {{__other}} for {name}\"))),\n\
                 }}"
            )
        }
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    code.parse().expect("generated Deserialize impl must parse")
}
