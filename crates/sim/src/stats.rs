//! Simulation statistics: per-instruction latency and message traffic.

use cxl_core::RuleCategory;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Latency summary (in simulation steps) for one instruction kind.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LatencySummary {
    /// Instructions retired.
    pub count: usize,
    /// Total steps spent at the program head.
    pub total_steps: u64,
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency.
    pub max: u64,
}

impl LatencySummary {
    pub(crate) fn record(&mut self, latency: u64) {
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count += 1;
        self.total_steps += latency;
    }

    /// Mean latency in steps.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_steps as f64 / self.count as f64
        }
    }
}

/// Aggregate statistics of one simulation run (or a batch).
#[derive(Clone, Debug, Default, Serialize)]
pub struct SimStats {
    /// Runs aggregated.
    pub runs: usize,
    /// Total transition steps.
    pub steps: u64,
    /// Instructions retired, total.
    pub instructions: usize,
    /// Latency per instruction kind (`Load` / `Store` / `Evict`).
    pub latency: BTreeMap<String, LatencySummary>,
    /// Rule firings by category (a traffic proxy: each `DeviceSnoop`
    /// firing is a snoop processed, each `HostRequest` a request served…).
    pub category_firings: BTreeMap<String, u64>,
    /// D2H data messages sent, split by bogus flag — the §4.4 traffic
    /// metric.
    pub data_messages: u64,
    /// Bogus (stale-eviction) data messages among them.
    pub bogus_data_messages: u64,
}

impl SimStats {
    /// Record one rule firing.
    pub(crate) fn record_firing(&mut self, category: RuleCategory) {
        *self.category_firings.entry(category.to_string()).or_insert(0) += 1;
        self.steps += 1;
    }

    /// Record a retired instruction and its latency.
    pub(crate) fn record_retire(&mut self, kind: &str, latency: u64) {
        self.instructions += 1;
        self.latency.entry(kind.to_string()).or_default().record(latency);
    }

    /// Instructions retired per 100 steps — the throughput figure.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.instructions as f64 * 100.0 / self.steps as f64
        }
    }

    /// Merge another run's statistics in.
    pub fn merge(&mut self, other: &SimStats) {
        self.runs += other.runs;
        self.steps += other.steps;
        self.instructions += other.instructions;
        for (k, v) in &other.latency {
            let e = self.latency.entry(k.clone()).or_default();
            if e.count == 0 {
                *e = v.clone();
            } else {
                e.min = e.min.min(v.min);
                e.max = e.max.max(v.max);
                e.count += v.count;
                e.total_steps += v.total_steps;
            }
        }
        for (k, v) in &other.category_firings {
            *self.category_firings.entry(k.clone()).or_insert(0) += v;
        }
        self.data_messages += other.data_messages;
        self.bogus_data_messages += other.bogus_data_messages;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runs: {}  steps: {}  instructions: {}  throughput: {:.1} instr/100 steps",
            self.runs,
            self.steps,
            self.instructions,
            self.throughput()
        )?;
        for (kind, lat) in &self.latency {
            writeln!(
                f,
                "  {kind:<6} latency: mean {:.1}  min {}  max {}  (n={})",
                lat.mean(),
                lat.min,
                lat.max,
                lat.count
            )?;
        }
        for (cat, n) in &self.category_firings {
            writeln!(f, "  firings[{cat}]: {n}")?;
        }
        writeln!(
            f,
            "  D2H data messages: {} ({} bogus)",
            self.data_messages, self.bogus_data_messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_tracks_extremes() {
        let mut l = LatencySummary::default();
        l.record(5);
        l.record(1);
        l.record(9);
        assert_eq!(l.min, 1);
        assert_eq!(l.max, 9);
        assert_eq!(l.count, 3);
        assert!((l.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats { runs: 1, ..SimStats::default() };
        a.record_firing(RuleCategory::DeviceIssue);
        a.record_retire("Load", 3);
        let mut b = SimStats { runs: 1, ..SimStats::default() };
        b.record_firing(RuleCategory::DeviceIssue);
        b.record_firing(RuleCategory::HostRequest);
        b.record_retire("Load", 7);
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.steps, 3);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.latency["Load"].max, 7);
        assert_eq!(a.category_firings["DeviceIssue"], 2);
    }

    #[test]
    fn throughput_is_per_100_steps() {
        let mut s = SimStats::default();
        for _ in 0..50 {
            s.record_firing(RuleCategory::DeviceIssue);
        }
        for _ in 0..10 {
            s.record_retire("Evict", 5);
        }
        assert!((s.throughput() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_figures() {
        let mut s = SimStats { runs: 1, ..SimStats::default() };
        s.record_firing(RuleCategory::DeviceSnoop);
        s.record_retire("Store", 4);
        let txt = s.to_string();
        for needle in ["throughput", "Store", "DeviceSnoop", "data messages"] {
            assert!(txt.contains(needle), "missing {needle} in {txt}");
        }
    }
}
