//! Workload generation: random device programs with a configurable
//! instruction mix.
//!
//! The paper's programs "only serve to trigger coherence transactions"
//! (§3.1); a workload here is simply a pair of generated instruction
//! lists. The mix weights let experiments skew towards read-heavy,
//! write-heavy or eviction-heavy behaviour — the knob the traffic
//! statistics of [`crate::Simulator`] are swept over.

use cxl_core::instr::{Instruction, Program};
use cxl_core::Val;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative weights of the three instruction kinds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Weight of `Load`.
    pub load: u32,
    /// Weight of `Store`.
    pub store: u32,
    /// Weight of `Evict`.
    pub evict: u32,
}

impl InstructionMix {
    /// A balanced mix.
    #[must_use]
    pub fn balanced() -> Self {
        InstructionMix { load: 1, store: 1, evict: 1 }
    }

    /// A read-heavy mix (typical accelerator input streaming).
    #[must_use]
    pub fn read_heavy() -> Self {
        InstructionMix { load: 8, store: 1, evict: 1 }
    }

    /// A write-heavy mix (producer device).
    #[must_use]
    pub fn write_heavy() -> Self {
        InstructionMix { load: 1, store: 8, evict: 1 }
    }

    /// An eviction-heavy mix (capacity-pressure behaviour; exercises the
    /// paper's §4.4 stale-eviction flows).
    #[must_use]
    pub fn evict_heavy() -> Self {
        InstructionMix { load: 1, store: 2, evict: 5 }
    }

    /// Total weight.
    ///
    /// # Panics
    /// Panics if all weights are zero.
    #[must_use]
    pub fn total(&self) -> u32 {
        let t = self.load + self.store + self.evict;
        assert!(t > 0, "instruction mix must have a positive total weight");
        t
    }

    fn sample(&self, rng: &mut StdRng, next_val: &mut Val) -> Instruction {
        let t = self.total();
        let x = rng.gen_range(0..t);
        if x < self.load {
            Instruction::Load
        } else if x < self.load + self.store {
            *next_val += 1;
            Instruction::Store(*next_val)
        } else {
            Instruction::Evict
        }
    }
}

/// A workload specification: program lengths, mix, and RNG seed.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Instructions per device program.
    pub program_len: usize,
    /// The instruction mix.
    pub mix: InstructionMix,
    /// Seed for reproducible generation.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A balanced workload of the given length.
    #[must_use]
    pub fn new(program_len: usize, mix: InstructionMix, seed: u64) -> Self {
        WorkloadSpec { program_len, mix, seed }
    }

    /// Generate the two device programs. Store values are distinct
    /// ascending integers so every write is identifiable in traces.
    #[must_use]
    pub fn generate(&self) -> (Program, Program) {
        let mut progs = self.generate_for(2);
        let p2 = progs.pop().expect("two programs");
        let p1 = progs.pop().expect("two programs");
        (p1, p2)
    }

    /// Generate one program per device of an `n`-device topology. The
    /// first two programs coincide with [`Self::generate`]'s pair, so a
    /// wider topology extends — rather than reshuffles — the two-device
    /// workload.
    #[must_use]
    pub fn generate_for(&self, n: usize) -> Vec<Program> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut next_val: Val = 100;
        (0..n)
            .map(|_| {
                (0..self.program_len)
                    .map(|_| self.mix.sample(&mut rng, &mut next_val))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let spec = WorkloadSpec::new(8, InstructionMix::balanced(), 42);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::new(8, InstructionMix::balanced(), 1).generate();
        let b = WorkloadSpec::new(8, InstructionMix::balanced(), 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn store_values_are_distinct() {
        let (p1, p2) = WorkloadSpec::new(20, InstructionMix::write_heavy(), 3).generate();
        let mut vals: Vec<i64> = p1
            .iter()
            .chain(p2.iter())
            .filter_map(|i| match i {
                Instruction::Store(v) => Some(*v),
                _ => None,
            })
            .collect();
        let before = vals.len();
        assert!(before > 10, "write-heavy mix should produce many stores");
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), before, "store values must be distinct");
    }

    #[test]
    fn mix_biases_sampling() {
        let (p1, p2) = WorkloadSpec::new(100, InstructionMix::read_heavy(), 4).generate();
        let loads = p1
            .iter()
            .chain(p2.iter())
            .filter(|i| matches!(i, Instruction::Load))
            .count();
        assert!(loads > 120, "read-heavy mix should be mostly loads, got {loads}/200");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_panics() {
        let _ = InstructionMix { load: 0, store: 0, evict: 0 }.total();
    }
}
