//! # cxl-sim — workload simulation over the CXL.cache model
//!
//! Where `cxl-mc` explores *every* interleaving of a bounded scenario,
//! this crate samples single seeded paths through the model's
//! nondeterminism — a lightweight simulator for workloads far longer than
//! exhaustive exploration can handle, with per-instruction latency and
//! message-traffic accounting. SWMR (paper Definition 6.1) is asserted on
//! every visited state, so long simulations double as randomised
//! validation of the model.
//!
//! Components:
//!
//! - [`WorkloadSpec`] / [`InstructionMix`] — reproducible random program
//!   generation with configurable read/write/evict bias;
//! - [`Simulator`] — the seeded random-walk engine;
//! - [`SimStats`] / [`LatencySummary`] — throughput, per-instruction
//!   latency, rule-category traffic, and the §4.4 bogus-data counters.
//!
//! ## Example: eviction-heavy traffic under the §4.4 optimisation
//!
//! ```
//! use cxl_core::ProtocolConfig;
//! use cxl_sim::{InstructionMix, Simulator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::new(8, InstructionMix::evict_heavy(), 1);
//! let baseline = Simulator::new(ProtocolConfig::strict()).run_workload(&spec, 5);
//! let optimised = Simulator::new(ProtocolConfig::full()).run_workload(&spec, 5);
//! // Both retire the whole workload coherently.
//! assert_eq!(baseline.instructions, optimised.instructions);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod simulator;
mod stats;
mod workload;

pub use simulator::Simulator;
pub use stats::{LatencySummary, SimStats};
pub use workload::{InstructionMix, WorkloadSpec};
