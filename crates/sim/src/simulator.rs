//! The random-walk simulator: one seeded path through the model's
//! nondeterminism per run, with latency and traffic accounting.
//!
//! Where the model checker (`cxl-mc`) explores *all* interleavings, the
//! simulator samples one path per seed — the cheap way to run workloads
//! far longer than exhaustive exploration can handle, while still
//! asserting SWMR on every visited state.

use crate::stats::SimStats;
use crate::workload::WorkloadSpec;
use cxl_core::instr::Instruction;
use cxl_core::{swmr, ProtocolConfig, Ruleset, SystemState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random-walk simulator over a [`Ruleset`].
///
/// # Examples
///
/// ```
/// use cxl_core::ProtocolConfig;
/// use cxl_sim::{InstructionMix, Simulator, WorkloadSpec};
///
/// let sim = Simulator::new(ProtocolConfig::strict());
/// let spec = WorkloadSpec::new(6, InstructionMix::balanced(), 7);
/// let stats = sim.run_workload(&spec, 3);
/// assert_eq!(stats.runs, 3);
/// assert!(stats.instructions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    rules: Ruleset,
    /// Abort a run after this many steps (a liveness tripwire; the strict
    /// model always quiesces long before).
    pub max_steps: u64,
}

impl Simulator {
    /// A two-device simulator over the given configuration.
    #[must_use]
    pub fn new(config: ProtocolConfig) -> Self {
        Simulator { rules: Ruleset::new(config), max_steps: 100_000 }
    }

    /// An `n`-device simulator: workloads generate one program per device
    /// and every walk quantifies SWMR over the whole device set.
    ///
    /// # Panics
    /// Panics if `n` is outside the supported device-count range.
    #[must_use]
    pub fn with_devices(config: ProtocolConfig, n: usize) -> Self {
        Simulator { rules: Ruleset::with_devices(config, n), max_steps: 100_000 }
    }

    /// Number of devices this simulator drives.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.rules.device_count()
    }

    /// The underlying rule set.
    #[must_use]
    pub fn rules(&self) -> &Ruleset {
        &self.rules
    }

    /// Run one seeded walk from `initial` to quiescence.
    ///
    /// # Panics
    /// Panics if SWMR is violated on any visited state, if the walk
    /// exceeds `max_steps`, or if it reaches a non-quiescent terminal
    /// state — any of these is a model regression.
    #[must_use]
    pub fn run(&self, initial: &SystemState, seed: u64) -> SimStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SimStats { runs: 1, ..SimStats::default() };
        let mut state = initial.clone();
        // Per-device step at which the current head instruction became
        // active.
        let mut head_since = vec![0u64; initial.device_count()];
        let mut step = 0u64;

        loop {
            assert!(swmr(&state), "SWMR violated during simulation:\n{state}");
            let succs = self.rules.successors(&state);
            if succs.is_empty() {
                assert!(
                    state.is_quiescent(),
                    "simulation wedged in a non-quiescent state:\n{state}"
                );
                break;
            }
            let (rule, next) = {
                let pick = rng.gen_range(0..succs.len());
                succs.into_iter().nth(pick).expect("index in range")
            };
            step += 1;
            assert!(step <= self.max_steps, "simulation exceeded {} steps", self.max_steps);
            stats.record_firing(rule.shape.category());

            // Data-traffic accounting: count D2H data sends.
            for d in state.device_ids() {
                let before = state.dev(d).d2h_data.len();
                let after = next.dev(d).d2h_data.len();
                if after > before {
                    stats.data_messages += (after - before) as u64;
                    if next.dev(d).d2h_data.as_slice().last().is_some_and(|m| m.bogus) {
                        stats.bogus_data_messages += 1;
                    }
                }
            }

            // Retirement accounting: latency = steps the instruction spent
            // at the program head.
            for d in state.device_ids() {
                let before = state.dev(d).prog.len();
                let after = next.dev(d).prog.len();
                if after < before {
                    let kind = match state.dev(d).next_instr() {
                        Some(Instruction::Load) => "Load",
                        Some(Instruction::Store(_)) => "Store",
                        Some(Instruction::Evict) => "Evict",
                        None => unreachable!("retired from an empty program"),
                    };
                    stats.record_retire(kind, step - head_since[d.index()]);
                    head_since[d.index()] = step;
                }
            }
            state = next;
        }
        stats
    }

    /// Run `runs` differently-seeded walks of one workload and aggregate.
    /// One program is generated per device of this simulator's topology.
    #[must_use]
    pub fn run_workload(&self, spec: &WorkloadSpec, runs: usize) -> SimStats {
        let progs = spec.generate_for(self.device_count());
        let initial = SystemState::initial_n(self.device_count(), progs);
        let mut total = SimStats::default();
        for i in 0..runs {
            let stats = self.run(&initial, spec.seed.wrapping_add(i as u64 * 0x9e37_79b9));
            total.merge(&stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::InstructionMix;
    use cxl_core::instr::programs;

    #[test]
    fn single_run_retires_everything() {
        let sim = Simulator::new(ProtocolConfig::strict());
        let init = SystemState::initial(programs::store(42), programs::load());
        let stats = sim.run(&init, 1);
        assert_eq!(stats.instructions, 2);
        assert!(stats.steps >= 8, "a store+load needs at least the full flows");
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let sim = Simulator::new(ProtocolConfig::strict());
        let init = SystemState::initial(programs::stores(0, 3), programs::loads(3));
        let a = sim.run(&init, 9);
        let b = sim.run(&init, 9);
        assert_eq!(a.steps, b.steps);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn workload_batch_aggregates() {
        let sim = Simulator::new(ProtocolConfig::full());
        let spec = WorkloadSpec::new(5, InstructionMix::balanced(), 11);
        let stats = sim.run_workload(&spec, 4);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.instructions, 4 * 10, "5 instrs × 2 devices × 4 runs");
    }

    #[test]
    fn evict_heavy_workloads_produce_bogus_traffic_under_baseline() {
        // Stale dirty evictions force bogus pulls in the strict model.
        let sim = Simulator::new(ProtocolConfig::strict());
        let spec = WorkloadSpec::new(12, InstructionMix::evict_heavy(), 5);
        let mut total = SimStats::default();
        for k in 0..20 {
            let s = sim.run_workload(&WorkloadSpec { seed: spec.seed + k, ..spec }, 1);
            total.merge(&s);
        }
        assert!(total.data_messages > 0);
        // Not every seed races an eviction, but across 20 some do.
        assert!(
            total.bogus_data_messages > 0,
            "expected at least one stale eviction across 20 eviction-heavy runs"
        );
    }

    #[test]
    fn latency_is_positive_for_missing_loads() {
        let sim = Simulator::new(ProtocolConfig::strict());
        let init = SystemState::initial(programs::load(), vec![]);
        let stats = sim.run(&init, 3);
        let lat = &stats.latency["Load"];
        assert_eq!(lat.count, 1);
        assert!(lat.min >= 4, "a cold load takes issue + host grant + GO + data");
    }
}
