//! Exploration results: statistics, violations with counterexample traces,
//! and deadlock reports.

use cxl_core::{RuleId, SystemState};
use cxl_telemetry::{FlightEvent, PhaseNanos};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One step of a counterexample trace: the rule fired and the state it
/// produced.
#[derive(Clone, Debug)]
pub struct Step {
    /// The rule that fired.
    pub rule: RuleId,
    /// The state after firing.
    pub state: SystemState,
}

/// A full counterexample: the initial state followed by the steps leading
/// to the offending state (the paper's Tables 1–3 are renderings of such
/// traces).
#[derive(Clone, Debug)]
pub struct Trace {
    /// The initial state.
    pub initial: SystemState,
    /// The steps, in firing order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// The final state of the trace (the initial state if empty).
    #[must_use]
    pub fn last_state(&self) -> &SystemState {
        self.steps.last().map_or(&self.initial, |s| &s.state)
    }

    /// Number of transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is this the empty trace (just the initial state)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The rule names along the trace, in order.
    #[must_use]
    pub fn rule_names(&self) -> Vec<String> {
        self.steps.iter().map(|s| s.rule.name()).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(initial state)")?;
        write!(f, "{}", self.initial)?;
        for step in &self.steps {
            writeln!(f, "--- {} ---", step.rule.name())?;
            write!(f, "{}", step.state)?;
        }
        Ok(())
    }
}

/// A property violation found during exploration.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Explanation (e.g. the violated invariant conjunct).
    pub detail: String,
    /// Counterexample trace from the initial state to the violating state.
    pub trace: Trace,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.detail)?;
        writeln!(f, "after {} steps: {}", self.trace.len(), self.trace.rule_names().join(" → "))
    }
}

/// A terminal (no enabled rule) state that is not quiescent — a deadlock
/// or stuck protocol state. The strict model must have none; relaxed
/// models may (paper §5.2's "additional states become reachable").
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// Trace from the initial state to the stuck state.
    pub trace: Trace,
}

/// A frontier state whose expansion panicked inside a supervised worker.
///
/// The checker catches the panic, records the poison state here (packed
/// bytes plus a decoded dump, so the report is self-contained even if the
/// decode path itself is what panicked), and keeps exploring: one bad
/// successor degrades coverage accounting instead of aborting the run.
/// A quarantined state stays [`crate::NOT_EXPANDED`], so its successors
/// are *not* covered — [`Report::complete_coverage`] reports false.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// Arena id (discovery order) of the state whose expansion panicked.
    pub state: usize,
    /// The state's packed encoding, as stored in the arena.
    pub packed: Vec<u8>,
    /// Decoded rendering of the state ("<undecodable>" if decoding is
    /// itself the poison).
    pub dump: String,
    /// The panic payload, when it carried a message.
    pub message: String,
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state {} quarantined ({} packed bytes): {}",
            self.state,
            self.packed.len(),
            self.message
        )
    }
}

/// One rung of the memory-pressure degradation ladder, recorded in
/// [`Report::sheds`] in the order taken: shed capacity slack first, then
/// emit an emergency checkpoint, and only then truncate the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradationAction {
    /// Capacity slack was released (arena, dedup index, parent/successor
    /// tables, scratch buffers); carries the bytes reclaimed.
    ShedBuffers {
        /// Footprint bytes freed by the shed.
        reclaimed: usize,
    },
    /// An emergency checkpoint was written before the budget line.
    EmergencyCheckpoint,
    /// The hard budget was reached and the search truncated
    /// ([`Report::truncated_by_memory`]).
    Truncate,
}

/// A recorded degradation-ladder step: what was done, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationStep {
    /// The rung taken.
    pub action: DegradationAction,
    /// Stored states at the time.
    pub at_states: usize,
    /// Tracked footprint (arena + index + queues) in bytes *after* the
    /// action.
    pub footprint: usize,
}

impl fmt::Display for DegradationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            DegradationAction::ShedBuffers { reclaimed } => write!(
                f,
                "shed {:.1} KiB of buffer slack at {} states ({:.1} KiB resident)",
                reclaimed as f64 / 1024.0,
                self.at_states,
                self.footprint as f64 / 1024.0
            ),
            DegradationAction::EmergencyCheckpoint => write!(
                f,
                "emergency checkpoint at {} states ({:.1} KiB resident)",
                self.at_states,
                self.footprint as f64 / 1024.0
            ),
            DegradationAction::Truncate => write!(
                f,
                "truncated at {} states ({:.1} KiB resident)",
                self.at_states,
                self.footprint as f64 / 1024.0
            ),
        }
    }
}

/// What a state-space reduction did during one exploration (present only
/// when [`crate::CheckOptions::reduction`] installed a reducer), with
/// per-engine accounting: device symmetry, data symmetry, and POR each
/// report their own contribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReductionSummary {
    /// Which engines ran, e.g.
    /// `symmetry(|G| = 6, 1 classes) + data-symmetry(2 pinned) + por(wide)`.
    pub description: String,
    /// Order of the detected device-permutation subgroup (1 = trivial).
    pub group_order: u64,
    /// Successor encodings whose device arrangement was rewritten to a
    /// different orbit representative (device-symmetry engine).
    pub orbit_canonicalized: u64,
    /// Successor encodings whose value assignment was renumbered
    /// (data-symmetry engine).
    pub value_canonicalized: u64,
    /// Was the data-symmetry engine armed (and potentially active)?
    pub data_symmetry: bool,
    /// States expanded through a singleton ample **local** step (static
    /// safe-local, or a snoop-free local hit under the wide tier).
    pub ample_local: u64,
    /// States expanded through a collapsed GO/data completion diamond
    /// (wide tier only).
    pub ample_diamond: u64,
    /// States expanded through a singleton host-drain ample step
    /// (wide tier only; fires when exactly one device can mint host
    /// progress and the host is waiting on its data).
    pub ample_host_drain: u64,
    /// The POR tier that ran.
    pub por: cxl_reduce::PorMode,
    /// Which canonicalization engine actually ran: `"off"`, `"refine"`
    /// (partition-refinement labeller), `"brute"` (arrangement
    /// enumeration), or `"capped"` (refine over group byte-classes after
    /// the brute enumeration cap tripped — sound, but a coarser quotient).
    pub canon: &'static str,
    /// Σ device-orbit sizes over the stored arena — exactly how many
    /// states the unreduced exploration of the equivariant relation
    /// would store *under the device-symmetry engine alone*.
    /// `orbit_states / states` is the effective device-symmetry factor;
    /// data-symmetry and POR savings come on top and are visible only
    /// against a measured unreduced run.
    pub orbit_states: u64,
}

impl ReductionSummary {
    /// Effective device-symmetry reduction factor against `states`
    /// stored states (1.0 when inert).
    #[must_use]
    pub fn effective_factor(&self, states: usize) -> f64 {
        if states == 0 {
            1.0
        } else {
            self.orbit_states as f64 / states as f64
        }
    }

    /// Total singleton-ample expansions across both POR tiers.
    #[must_use]
    pub fn ample_steps(&self) -> u64 {
        self.ample_local + self.ample_diamond + self.ample_host_drain
    }
}

/// Aggregate statistics and findings of one exploration.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (edges) examined.
    pub transitions: usize,
    /// Deepest BFS layer reached.
    pub depth: usize,
    /// True if the exploration hit a state, depth, or memory bound before
    /// exhausting the reachable space.
    pub truncated: bool,
    /// True if the bound that truncated the search was the memory budget
    /// ([`crate::CheckOptions::mem_budget`]) — lets callers report "ran
    /// out of budget" distinctly from "hit `max_states`".
    pub truncated_by_memory: bool,
    /// True if the bound that truncated the search was the wall-clock
    /// budget ([`crate::CheckOptions::time_budget`]). Time-budget stops
    /// land on a BFS level boundary, so when checkpointing is configured
    /// the final checkpoint of a time-truncated run is exactly resumable.
    pub truncated_by_time: bool,
    /// Frontier states whose expansion panicked inside a supervised
    /// worker, quarantined instead of aborting the run. Non-empty
    /// quarantine means coverage is incomplete even when `truncated` is
    /// false — see [`Self::complete_coverage`].
    pub quarantined: Vec<Quarantine>,
    /// Degradation-ladder steps taken under memory pressure, in order.
    pub sheds: Vec<DegradationStep>,
    /// When this report continues an interrupted exploration, the state
    /// count the resumed session started from.
    pub resumed_from: Option<usize>,
    /// Property violations (bounded by the checker's options).
    pub violations: Vec<Violation>,
    /// Non-quiescent terminal states.
    pub deadlocks: Vec<Deadlock>,
    /// Terminal states total (quiescent + deadlocked).
    pub terminal_states: usize,
    /// How often each rule fired (a coverage measure for the rule set).
    ///
    /// Keyed by [`RuleId`] — a two-word `Copy` key — so the exploration
    /// hot loop never allocates a `String` per transition; render names
    /// only at report time via [`Report::rule_firings_by_name`].
    pub rule_firings: BTreeMap<RuleId, u64>,
    /// Wall-clock exploration time.
    pub elapsed: Duration,
    /// Resident bytes of the packed state store at the end of the search
    /// (payload + offset table) — the figure the memory budget bounds and
    /// the bench snapshot's `bytes_per_state` divides.
    pub memory_bytes: usize,
    /// Reduction statistics, when a reducer was installed. Note that a
    /// reduced report's `states`/`transitions` count *representatives*,
    /// not raw states, and violation traces are in canonical coordinates
    /// (de-permute via `cxl-litmus`'s replay module).
    pub reduction: Option<ReductionSummary>,
    /// Number of dedup/store shards the driver ran with: 1 for the
    /// sequential driver, the effective shard count for the sharded
    /// driver ([`crate::CheckOptions::shards`]).
    pub shards: usize,
    /// Successor messages routed to owner shards by fingerprint — one
    /// per examined transition under the sharded driver, 0 otherwise.
    pub routed_messages: u64,
    /// Shard load imbalance: `(max − mean) / mean × 100` over per-shard
    /// stored-state counts. 0 means perfectly even ownership; the routing
    /// hash keeps this low for any non-adversarial state space.
    pub shard_imbalance_pct: f64,
    /// States stored as parent-deltas rather than full encodings
    /// ([`crate::CheckOptions::delta_keyframe`]); 0 when delta encoding
    /// is off or never beat the full encoding.
    pub delta_entries: u64,
    /// Sealed cold extents written to [`crate::CheckOptions::spill_dir`]
    /// over the whole run; 0 when spilling is off or never triggered.
    pub spilled_extents: u64,
    /// Spilled extents faulted back from disk for decode (traces,
    /// property dumps, checkpoint materialization); expansion itself
    /// never faults, so this stays tiny on clean runs.
    pub faulted_extents: u64,
    /// Where this run's wall time went, by coarse phase — present only
    /// when a telemetry recorder was installed (the phase clock never
    /// reads the time otherwise). Covers this session only; a resumed
    /// run's `elapsed` may include unprofiled predecessor time.
    pub profile: Option<PhaseNanos>,
    /// The flight recorder's retained events (oldest first): the last K
    /// level commits, checkpoint writes, degradation rungs, spill
    /// seals/faults, quarantines, violations, and resumes. Restored
    /// rings carry events from the interrupted session(s) too.
    pub flight: Vec<FlightEvent>,
}

impl Report {
    /// Did every checked property hold on every visited state, with no
    /// deadlocks?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// Did the exploration cover the whole reachable space? False when
    /// the search truncated (states, depth, memory, or time bound) or
    /// when any state was quarantined after a worker panic. A clean but
    /// incomplete run proves nothing about the unexplored remainder —
    /// callers gating on "verified clean" must check both
    /// [`Self::clean`] and this.
    #[must_use]
    pub fn complete_coverage(&self) -> bool {
        !self.truncated && self.quarantined.is_empty()
    }

    /// Rules that never fired (given the full rule universe); useful for
    /// coverage audits.
    #[must_use]
    pub fn unfired_rules(&self, all_rules: &[RuleId]) -> Vec<String> {
        all_rules
            .iter()
            .filter(|r| !self.rule_firings.contains_key(r))
            .map(|r| r.name())
            .collect()
    }

    /// Rule firings rendered under paper-style rule names — the
    /// report-time view of [`Self::rule_firings`].
    #[must_use]
    pub fn rule_firings_by_name(&self) -> BTreeMap<String, u64> {
        self.rule_firings.iter().map(|(id, n)| (id.name(), *n)).collect()
    }

    /// Mean distinct states stored per second of wall time (0.0 for a
    /// zero-duration run).
    #[must_use]
    pub fn mean_states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states: {}  transitions: {}  depth: {}  terminals: {}  truncated: {}",
            self.states, self.transitions, self.depth, self.terminal_states, self.truncated
        )?;
        writeln!(
            f,
            "violations: {}  deadlocks: {}  elapsed: {:?}  throughput: {:.0} states/s  \
             state store: {:.1} KiB{}{}",
            self.violations.len(),
            self.deadlocks.len(),
            self.elapsed,
            self.mean_states_per_sec(),
            self.memory_bytes as f64 / 1024.0,
            if self.truncated_by_memory { " (memory budget exhausted)" } else { "" },
            if self.truncated_by_time { " (time budget exhausted)" } else { "" }
        )?;
        if let Some(p) = &self.profile {
            // Phase shares of the wall clock; "untimed" is whatever the
            // coarse per-level blocks did not cover (driver bookkeeping,
            // and — on resumed runs — the predecessor sessions' time).
            let wall = self.elapsed.as_nanos().max(1) as f64;
            let pct = |nanos: u64| nanos as f64 / wall * 100.0;
            let untimed = self
                .elapsed
                .as_nanos()
                .saturating_sub(u128::from(p.total()));
            writeln!(
                f,
                "profile: expand {:.1}%  merge {:.1}%  check {:.1}%  spill {:.1}%  \
                 checkpoint {:.1}%  untimed {:.1}%",
                pct(p.expand),
                pct(p.merge),
                pct(p.check),
                pct(p.spill),
                pct(p.checkpoint),
                untimed as f64 / wall * 100.0
            )?;
        }
        if self.shards > 1 {
            writeln!(
                f,
                "shards: {}  routed messages: {}  imbalance: {:.1}%",
                self.shards, self.routed_messages, self.shard_imbalance_pct
            )?;
        }
        if self.delta_entries > 0 || self.spilled_extents > 0 {
            writeln!(
                f,
                "delta entries: {}  spilled extents: {}  faulted extents: {}",
                self.delta_entries, self.spilled_extents, self.faulted_extents
            )?;
        }
        if let Some(from) = self.resumed_from {
            writeln!(f, "resumed from a checkpoint at {from} states")?;
        }
        if !self.quarantined.is_empty() {
            writeln!(f, "quarantined: {} poison state(s)", self.quarantined.len())?;
            for q in &self.quarantined {
                writeln!(f, "  {q}")?;
            }
        }
        for shed in &self.sheds {
            writeln!(f, "degradation: {shed}")?;
        }
        if let Some(red) = &self.reduction {
            writeln!(f, "reduction: {}", red.description)?;
            // The arrangement line also prints for a byte-trivial group
            // when the data engine's value-blind joint permutations
            // rewrote arrangements (|G| then reads 1; the description
            // carries the joint-perm count).
            if red.group_order > 1 || red.orbit_canonicalized > 0 {
                writeln!(
                    f,
                    "  symmetry:      {} orbit-canonicalized (|G| = {}, canon: {}); \
                     effective factor {:.2}x ({} orbit states / {} stored)",
                    red.orbit_canonicalized,
                    red.group_order,
                    if red.canon.is_empty() { "off" } else { red.canon },
                    red.effective_factor(self.states),
                    red.orbit_states,
                    self.states
                )?;
            }
            if red.data_symmetry {
                writeln!(
                    f,
                    "  data-symmetry: {} value-renumbered",
                    red.value_canonicalized
                )?;
            }
            if red.por != cxl_reduce::PorMode::Off {
                writeln!(
                    f,
                    "  por:           {} ample steps ({} local, {} diamond, {} host-drain)",
                    red.ample_steps(),
                    red.ample_local,
                    red.ample_diamond,
                    red.ample_host_drain
                )?;
            }
        }
        for v in &self.violations {
            write!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_core::{DeviceId, Shape};

    #[test]
    fn trace_accessors() {
        let initial = SystemState::initial(vec![], vec![]);
        let mut t = Trace { initial: initial.clone(), steps: vec![] };
        assert!(t.is_empty());
        assert_eq!(t.last_state(), &initial);
        let mut s2 = initial.clone();
        s2.counter = 1;
        t.steps.push(Step { rule: RuleId::new(Shape::InvalidLoad, DeviceId::D1), state: s2 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.last_state().counter, 1);
        assert_eq!(t.rule_names(), vec!["InvalidLoad1"]);
    }

    #[test]
    fn report_clean_logic() {
        let mut r = Report::default();
        assert!(r.clean());
        r.deadlocks.push(Deadlock {
            trace: Trace { initial: SystemState::initial(vec![], vec![]), steps: vec![] },
        });
        assert!(!r.clean());
    }

    #[test]
    fn reduction_summary_display_prints_per_engine_lines() {
        // Snapshot of the per-engine report block: one line per armed
        // engine, none for the idle ones. Pinned exactly so a format
        // regression (e.g. re-merging the counts) fails loudly.
        let mut r = Report {
            states: 200,
            reduction: Some(ReductionSummary {
                description:
                    "symmetry(|G| = 6, 1 classes) + data-symmetry(2 pinned) + por(wide)".into(),
                group_order: 6,
                orbit_canonicalized: 12,
                value_canonicalized: 34,
                data_symmetry: true,
                ample_local: 40,
                ample_diamond: 16,
                ample_host_drain: 4,
                por: cxl_reduce::PorMode::Wide,
                canon: "refine",
                orbit_states: 1186,
            }),
            ..Report::default()
        };
        let text = r.to_string();
        let expected = "\
reduction: symmetry(|G| = 6, 1 classes) + data-symmetry(2 pinned) + por(wide)
  symmetry:      12 orbit-canonicalized (|G| = 6, canon: refine); effective factor 5.93x (1186 orbit states / 200 stored)
  data-symmetry: 34 value-renumbered
  por:           60 ample steps (40 local, 16 diamond, 4 host-drain)
";
        assert!(
            text.contains(expected),
            "per-engine reduction block drifted from the pinned format:\n{text}"
        );

        // Engines that did not run print no line.
        let only_sym = ReductionSummary {
            description: "symmetry(|G| = 2, 1 classes)".into(),
            group_order: 2,
            orbit_canonicalized: 5,
            orbit_states: 300,
            ..ReductionSummary::default()
        };
        r.reduction = Some(only_sym);
        let text = r.to_string();
        assert!(text.contains("symmetry:      5 orbit-canonicalized"));
        assert!(!text.contains("data-symmetry:"), "{text}");
        assert!(!text.contains("por:"), "{text}");
    }

    #[test]
    fn summary_block_pins_elapsed_and_throughput() {
        // Snapshot of the second summary line: elapsed wall time and mean
        // states/sec ride next to the verdict counts. Pinned exactly so a
        // format regression (or a silently dropped rate) fails loudly.
        let r = Report {
            states: 1000,
            transitions: 4000,
            depth: 7,
            terminal_states: 3,
            elapsed: Duration::from_secs(2),
            memory_bytes: 2048,
            ..Report::default()
        };
        let text = r.to_string();
        assert!(
            text.contains(
                "violations: 0  deadlocks: 0  elapsed: 2s  throughput: 500 states/s  \
                 state store: 2.0 KiB\n"
            ),
            "summary line drifted from the pinned format:\n{text}"
        );
        assert!(!text.contains("profile:"), "no profile without a recorder:\n{text}");

        // With a phase profile attached, a third line breaks the wall
        // time down (2s wall: 1s expand, 0.5s merge, 0.5s untimed).
        let profiled = Report {
            profile: Some(PhaseNanos {
                expand: 1_000_000_000,
                merge: 500_000_000,
                ..PhaseNanos::default()
            }),
            ..r
        };
        let text = profiled.to_string();
        assert!(
            text.contains(
                "profile: expand 50.0%  merge 25.0%  check 0.0%  spill 0.0%  \
                 checkpoint 0.0%  untimed 25.0%\n"
            ),
            "profile line drifted from the pinned format:\n{text}"
        );
    }

    #[test]
    fn unfired_rules_subtracts_firings() {
        let mut r = Report::default();
        let all = vec![
            RuleId::new(Shape::InvalidLoad, DeviceId::D1),
            RuleId::new(Shape::InvalidLoad, DeviceId::D2),
        ];
        r.rule_firings.insert(RuleId::new(Shape::InvalidLoad, DeviceId::D1), 3);
        assert_eq!(r.unfired_rules(&all), vec!["InvalidLoad2"]);
        assert_eq!(r.rule_firings_by_name()["InvalidLoad1"], 3);
    }
}
