//! Exploration results: statistics, violations with counterexample traces,
//! and deadlock reports.

use cxl_core::{RuleId, SystemState};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One step of a counterexample trace: the rule fired and the state it
/// produced.
#[derive(Clone, Debug)]
pub struct Step {
    /// The rule that fired.
    pub rule: RuleId,
    /// The state after firing.
    pub state: SystemState,
}

/// A full counterexample: the initial state followed by the steps leading
/// to the offending state (the paper's Tables 1–3 are renderings of such
/// traces).
#[derive(Clone, Debug)]
pub struct Trace {
    /// The initial state.
    pub initial: SystemState,
    /// The steps, in firing order.
    pub steps: Vec<Step>,
}

impl Trace {
    /// The final state of the trace (the initial state if empty).
    #[must_use]
    pub fn last_state(&self) -> &SystemState {
        self.steps.last().map_or(&self.initial, |s| &s.state)
    }

    /// Number of transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is this the empty trace (just the initial state)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The rule names along the trace, in order.
    #[must_use]
    pub fn rule_names(&self) -> Vec<String> {
        self.steps.iter().map(|s| s.rule.name()).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(initial state)")?;
        write!(f, "{}", self.initial)?;
        for step in &self.steps {
            writeln!(f, "--- {} ---", step.rule.name())?;
            write!(f, "{}", step.state)?;
        }
        Ok(())
    }
}

/// A property violation found during exploration.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Explanation (e.g. the violated invariant conjunct).
    pub detail: String,
    /// Counterexample trace from the initial state to the violating state.
    pub trace: Trace,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation of {}: {}", self.property, self.detail)?;
        writeln!(f, "after {} steps: {}", self.trace.len(), self.trace.rule_names().join(" → "))
    }
}

/// A terminal (no enabled rule) state that is not quiescent — a deadlock
/// or stuck protocol state. The strict model must have none; relaxed
/// models may (paper §5.2's "additional states become reachable").
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// Trace from the initial state to the stuck state.
    pub trace: Trace,
}

/// What a state-space reduction did during one exploration (present only
/// when [`crate::CheckOptions::reduction`] installed a reducer).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReductionSummary {
    /// Which engines ran, e.g. `symmetry(|G| = 6, 1 classes) + por`.
    pub description: String,
    /// Order of the detected device-permutation subgroup (1 = trivial).
    pub group_order: u64,
    /// Successor encodings rewritten to a different orbit representative.
    pub orbit_canonicalized: u64,
    /// States expanded through a singleton ample set instead of full
    /// successor generation.
    pub ample_steps: u64,
    /// Σ orbit sizes over the stored arena — exactly how many states the
    /// unreduced exploration of the equivariant relation would store.
    /// `orbit_states / states` is the effective symmetry-reduction
    /// factor (POR savings come on top and are visible only against a
    /// measured unreduced run).
    pub orbit_states: u64,
}

impl ReductionSummary {
    /// Effective symmetry-reduction factor against `states` stored
    /// states (1.0 when inert).
    #[must_use]
    pub fn effective_factor(&self, states: usize) -> f64 {
        if states == 0 {
            1.0
        } else {
            self.orbit_states as f64 / states as f64
        }
    }
}

/// Aggregate statistics and findings of one exploration.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (edges) examined.
    pub transitions: usize,
    /// Deepest BFS layer reached.
    pub depth: usize,
    /// True if the exploration hit a state, depth, or memory bound before
    /// exhausting the reachable space.
    pub truncated: bool,
    /// True if the bound that truncated the search was the memory budget
    /// ([`crate::CheckOptions::mem_budget`]) — lets callers report "ran
    /// out of budget" distinctly from "hit `max_states`".
    pub truncated_by_memory: bool,
    /// Property violations (bounded by the checker's options).
    pub violations: Vec<Violation>,
    /// Non-quiescent terminal states.
    pub deadlocks: Vec<Deadlock>,
    /// Terminal states total (quiescent + deadlocked).
    pub terminal_states: usize,
    /// How often each rule fired (a coverage measure for the rule set).
    ///
    /// Keyed by [`RuleId`] — a two-word `Copy` key — so the exploration
    /// hot loop never allocates a `String` per transition; render names
    /// only at report time via [`Report::rule_firings_by_name`].
    pub rule_firings: BTreeMap<RuleId, u64>,
    /// Wall-clock exploration time.
    pub elapsed: Duration,
    /// Resident bytes of the packed state store at the end of the search
    /// (payload + offset table) — the figure the memory budget bounds and
    /// the bench snapshot's `bytes_per_state` divides.
    pub memory_bytes: usize,
    /// Reduction statistics, when a reducer was installed. Note that a
    /// reduced report's `states`/`transitions` count *representatives*,
    /// not raw states, and violation traces are in canonical coordinates
    /// (de-permute via `cxl-litmus`'s replay module).
    pub reduction: Option<ReductionSummary>,
}

impl Report {
    /// Did every checked property hold on every visited state, with no
    /// deadlocks?
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// Rules that never fired (given the full rule universe); useful for
    /// coverage audits.
    #[must_use]
    pub fn unfired_rules(&self, all_rules: &[RuleId]) -> Vec<String> {
        all_rules
            .iter()
            .filter(|r| !self.rule_firings.contains_key(r))
            .map(|r| r.name())
            .collect()
    }

    /// Rule firings rendered under paper-style rule names — the
    /// report-time view of [`Self::rule_firings`].
    #[must_use]
    pub fn rule_firings_by_name(&self) -> BTreeMap<String, u64> {
        self.rule_firings.iter().map(|(id, n)| (id.name(), *n)).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "states: {}  transitions: {}  depth: {}  terminals: {}  truncated: {}",
            self.states, self.transitions, self.depth, self.terminal_states, self.truncated
        )?;
        writeln!(
            f,
            "violations: {}  deadlocks: {}  elapsed: {:?}  state store: {:.1} KiB{}",
            self.violations.len(),
            self.deadlocks.len(),
            self.elapsed,
            self.memory_bytes as f64 / 1024.0,
            if self.truncated_by_memory { " (memory budget exhausted)" } else { "" }
        )?;
        if let Some(red) = &self.reduction {
            writeln!(
                f,
                "reduction: {}  orbit-canonicalized: {}  ample steps: {}  \
                 effective factor: {:.2}x ({} orbit states / {} stored)",
                red.description,
                red.orbit_canonicalized,
                red.ample_steps,
                red.effective_factor(self.states),
                red.orbit_states,
                self.states
            )?;
        }
        for v in &self.violations {
            write!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_core::{DeviceId, Shape};

    #[test]
    fn trace_accessors() {
        let initial = SystemState::initial(vec![], vec![]);
        let mut t = Trace { initial: initial.clone(), steps: vec![] };
        assert!(t.is_empty());
        assert_eq!(t.last_state(), &initial);
        let mut s2 = initial.clone();
        s2.counter = 1;
        t.steps.push(Step { rule: RuleId::new(Shape::InvalidLoad, DeviceId::D1), state: s2 });
        assert_eq!(t.len(), 1);
        assert_eq!(t.last_state().counter, 1);
        assert_eq!(t.rule_names(), vec!["InvalidLoad1"]);
    }

    #[test]
    fn report_clean_logic() {
        let mut r = Report::default();
        assert!(r.clean());
        r.deadlocks.push(Deadlock {
            trace: Trace { initial: SystemState::initial(vec![], vec![]), steps: vec![] },
        });
        assert!(!r.clean());
    }

    #[test]
    fn unfired_rules_subtracts_firings() {
        let mut r = Report::default();
        let all = vec![
            RuleId::new(Shape::InvalidLoad, DeviceId::D1),
            RuleId::new(Shape::InvalidLoad, DeviceId::D2),
        ];
        r.rule_firings.insert(RuleId::new(Shape::InvalidLoad, DeviceId::D1), 3);
        assert_eq!(r.unfired_rules(&all), vec!["InvalidLoad2"]);
        assert_eq!(r.rule_firings_by_name()["InvalidLoad1"], 3);
    }
}
