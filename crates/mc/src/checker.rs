//! The explicit-state model checker.
//!
//! The paper explores its transition system inside Isabelle via the
//! `value` command with manual pruning (§5); here a breadth-first
//! enumeration with hashed state deduplication plays that role, made
//! exhaustive rather than semi-automatic. For bounded device programs the
//! model is finite-state (the invariant guarantees singleton channels), so
//! exhaustive exploration decides SWMR for every bounded configuration.
//!
//! ## The hot path
//!
//! Exploration throughput is the binding constraint on how large a
//! program grid the reproduction can decide, so the pipeline is built
//! around four ideas:
//!
//! - **Fingerprinted dedup** — every discovered state is hashed once with
//!   [`cxl_core::FxHasher`] into a 64-bit fingerprint; the visited set is
//!   a [`cxl_core::FpIndex`] keyed by that fingerprint through an identity
//!   hasher, so a dedup probe costs one u64 lookup (full state equality
//!   runs only on fingerprint collision).
//! - **Zero-alloc successor generation** —
//!   [`cxl_core::Ruleset::successors_into`] fills a reused scratch buffer
//!   and screens all 138 rule instances with cheap per-shape guard
//!   pre-checks before cloning anything.
//! - **No terminal rescan** — per-state successor counts are recorded
//!   during forward expansion, so terminal states (and deadlocks) fall out
//!   of the BFS itself instead of a second full successor-generation pass
//!   over every reached state (which doubled clean-run work).
//! - **A persistent worker pool** — with `threads > 1`, workers live for
//!   the whole search inside one [`std::thread::scope`], pull frontier
//!   chunks from a shared queue into per-worker scratch buffers, and the
//!   driver merges chunk results in deterministic (chunk-index) order.
//!   Property checking over freshly discovered states uses the same pool.
//!
//! The pre-optimisation algorithm survives as
//! [`ModelChecker::explore_naive`], the oracle for the differential tests
//! that pin the optimized pipeline to bit-identical exploration results.

use crate::property::Property;
use crate::report::{Deadlock, Report, Step, Trace, Violation};
use cxl_core::{FpIndex, RuleId, Ruleset, SystemState};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A pruning predicate: states for which it returns `true` are recorded
/// but not expanded. This reproduces the paper's §5 practice of "manually
/// prun\[ing\] the tree of possible paths by adding extra predicates, in
/// order to guide Isabelle towards a solution".
pub type Prune = Arc<dyn Fn(&SystemState) -> bool + Send + Sync>;

/// Exploration options.
#[derive(Clone)]
pub struct CheckOptions {
    /// Stop after this many distinct states (the exploration is then
    /// marked truncated).
    pub max_states: usize,
    /// Stop after this BFS depth, if set.
    pub max_depth: Option<usize>,
    /// Stop after collecting this many property violations.
    pub max_violations: usize,
    /// Worker threads for successor expansion and property checking.
    pub threads: usize,
    /// Optional pruning predicate (see [`Prune`]).
    pub prune: Option<Prune>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 10_000_000,
            max_depth: None,
            max_violations: 1,
            threads: 1,
            prune: None,
        }
    }
}

impl std::fmt::Debug for CheckOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckOptions")
            .field("max_states", &self.max_states)
            .field("max_depth", &self.max_depth)
            .field("max_violations", &self.max_violations)
            .field("threads", &self.threads)
            .field("prune", &self.prune.is_some())
            .finish()
    }
}

/// Sentinel for "this state was never expanded" in
/// [`Exploration::successor_counts`].
pub const NOT_EXPANDED: u32 = u32::MAX;

/// One frontier state's expansion: its arena id and full (pre-dedup)
/// successor list with precomputed fingerprints.
type ExpandedState = (usize, Vec<(RuleId, SystemState, u64)>);

/// The result of [`ModelChecker::explore`]: the report plus the full set
/// of reachable states (the exact universe the obligation matrix of
/// `cxl-sketch` quantifies over).
#[derive(Debug)]
pub struct Exploration {
    /// Statistics and findings.
    pub report: Report,
    /// Every distinct state visited, in discovery (BFS) order.
    pub states: Vec<Arc<SystemState>>,
    /// Per-state successor counts recorded during forward expansion
    /// (pre-dedup fan-out), indexed like [`Self::states`]. States the
    /// search stopped before expanding hold [`NOT_EXPANDED`]. A pruned
    /// state records 0, mirroring the naive checker's terminal notion.
    pub successor_counts: Vec<u32>,
}

impl Exploration {
    /// Was state `id` expanded with zero successors (i.e. is it terminal)?
    /// `None` when the search stopped before expanding it.
    #[must_use]
    pub fn is_terminal(&self, id: usize) -> Option<bool> {
        match self.successor_counts.get(id) {
            Some(&NOT_EXPANDED) | None => None,
            Some(&n) => Some(n == 0),
        }
    }

    /// Indices of all terminal states, in discovery order. On a clean,
    /// non-truncated run every state has been expanded, so this is exact —
    /// without re-running successor generation over the visited set.
    pub fn terminal_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.successor_counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == 0)
            .map(|(id, _)| id)
    }
}

/// A breadth-first explicit-state model checker over a [`Ruleset`].
///
/// # Examples
///
/// ```
/// use cxl_core::{ProtocolConfig, Ruleset, SystemState};
/// use cxl_core::instr::programs;
/// use cxl_mc::{ModelChecker, SwmrProperty};
///
/// let mc = ModelChecker::new(Ruleset::new(ProtocolConfig::strict()));
/// let init = SystemState::initial(programs::store(42), programs::load());
/// let report = mc.check(&init, &[&SwmrProperty]);
/// assert!(report.clean());
/// ```
#[derive(Debug)]
pub struct ModelChecker {
    rules: Ruleset,
    opts: CheckOptions,
}

impl ModelChecker {
    /// A checker with default options.
    #[must_use]
    pub fn new(rules: Ruleset) -> Self {
        ModelChecker { rules, opts: CheckOptions::default() }
    }

    /// A checker with explicit options.
    #[must_use]
    pub fn with_options(rules: Ruleset, opts: CheckOptions) -> Self {
        ModelChecker { rules, opts }
    }

    /// The rule set being explored.
    #[must_use]
    pub fn rules(&self) -> &Ruleset {
        &self.rules
    }

    /// The exploration options.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Explore and return just the report.
    #[must_use]
    pub fn check(&self, initial: &SystemState, props: &[&dyn Property]) -> Report {
        self.explore(initial, props).report
    }

    /// Explore all states reachable from `initial`, checking `props` on
    /// every state (including the initial one), detecting non-quiescent
    /// terminal states, and retaining the visited set.
    #[must_use]
    pub fn explore(&self, initial: &SystemState, props: &[&dyn Property]) -> Exploration {
        if self.opts.threads <= 1 {
            return self.run(initial, props, None);
        }
        let shared = PoolShared::new(&self.rules, self.opts.prune.as_ref(), props);
        std::thread::scope(|scope| {
            for _ in 0..self.opts.threads {
                scope.spawn(|| shared.worker_loop());
            }
            let out = self.run(initial, props, Some(&shared));
            shared.shutdown();
            out
        })
    }

    /// All states reachable from `initial` (no properties checked).
    #[must_use]
    pub fn reachable(&self, initial: &SystemState) -> Vec<Arc<SystemState>> {
        self.explore(initial, &[]).states
    }

    // -----------------------------------------------------------------
    // The optimized search.
    // -----------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run(
        &self,
        initial: &SystemState,
        props: &[&dyn Property],
        pool: Option<&PoolShared<'_>>,
    ) -> Exploration {
        let start = Instant::now();
        let mut report = Report::default();

        // Arena of discovered states + parent links for trace rebuilding
        // + per-state successor counts (recorded at expansion time).
        let mut states: Vec<Arc<SystemState>> = Vec::new();
        let mut parents: Vec<Option<(usize, RuleId)>> = Vec::new();
        let mut succ_counts: Vec<u32> = Vec::new();
        let mut index = FpIndex::new();

        // Side arena for over-cap states checked transiently after
        // `max_states` truncation, so a state reached twice in the
        // truncated tail is deduped and checked once.
        let mut transient: Vec<SystemState> = Vec::new();
        let mut transient_index = FpIndex::new();

        // Flat per-rule firing counters (dense-indexed; shapes × devices
        // of the rule set's topology); folded into the report's BTreeMap
        // once at the end, so the hot loop does one array increment per
        // transition instead of a map operation.
        let mut firings = vec![0u64; self.rules.rule_ids().len()];

        let init = Arc::new(initial.clone());
        let init_fp = init.fingerprint();
        states.push(Arc::clone(&init));
        parents.push(None);
        succ_counts.push(NOT_EXPANDED);
        index.insert(init_fp, 0, |_| unreachable!("empty index"));

        self.check_state(0, &states, &parents, props, &mut report);

        // Scratch buffer for sequential expansion: reused across the
        // whole search, so successor generation stops allocating once it
        // has grown to the widest fan-out.
        let mut scratch: Vec<(RuleId, SystemState)> = Vec::new();

        let mut frontier: Vec<usize> = vec![0];
        let mut depth = 0usize;

        'outer: while !frontier.is_empty() {
            if let Some(md) = self.opts.max_depth {
                if depth >= md {
                    report.truncated = true;
                    break;
                }
            }

            // Phases 1+2: expand the frontier and merge — dedupe by
            // fingerprint, link parents, count firings, record per-state
            // successor counts, detect terminals. A frontier state that
            // expands to zero successors is terminal; frontier order is
            // discovery order, so deadlock traces come out in the order
            // the naive rescan produced. Once `max_states` is reached no
            // further states are stored, but the remainder of the batch
            // is still deduped and property-checked transiently, so a
            // violation inside the truncated batch is reported rather
            // than silently dropped.
            //
            // The sequential driver merges straight out of the reused
            // scratch buffer (one move per stored state); the parallel
            // driver merges the pool's chunk results in deterministic
            // frontier order.
            let mut new_indices = Vec::new();
            let mut merge = |parent: usize,
                             rule: RuleId,
                             succ: SystemState,
                             fp: u64,
                             states: &mut Vec<Arc<SystemState>>,
                             parents: &mut Vec<Option<(usize, RuleId)>>,
                             succ_counts: &mut Vec<u32>,
                             report: &mut Report|
             -> bool {
                firings[self.rules.dense_index(rule)] += 1;
                report.transitions += 1;
                if report.truncated {
                    // Over-cap tail: dedup against both the stored arena
                    // (read-only probe) and the transient side arena,
                    // then property-check genuinely new states once.
                    let known = index.probe(fp, |id| *states[id as usize] == succ).is_some();
                    if !known {
                        let candidate =
                            u32::try_from(transient.len()).expect("state count fits u32");
                        let seen = transient_index
                            .insert(fp, candidate, |id| transient[id as usize] == succ)
                            .is_some();
                        if !seen {
                            transient.push(succ);
                            let succ = transient.last().expect("just pushed");
                            self.check_transient(
                                parent, rule, succ, states, parents, props, report,
                            );
                            if report.violations.len() >= self.opts.max_violations
                                && !report.violations.is_empty()
                            {
                                return true;
                            }
                        }
                    }
                    return false;
                }
                let candidate = u32::try_from(states.len()).expect("state count fits u32");
                if index.insert(fp, candidate, |id| *states[id as usize] == succ).is_some() {
                    return false;
                }
                states.push(Arc::new(succ));
                parents.push(Some((parent, rule)));
                succ_counts.push(NOT_EXPANDED);
                new_indices.push(candidate as usize);
                if states.len() >= self.opts.max_states {
                    report.truncated = true;
                }
                false
            };

            // Narrow frontiers expand inline even when a pool exists:
            // shipping a handful of states through the queue costs more
            // than expanding them (the merge order is identical either
            // way, so the choice is invisible in the results).
            match pool {
                Some(pool) if frontier.len() >= 2 * self.opts.threads => {
                    let expanded: Vec<ExpandedState> = pool.expand(&frontier, &states);
                    for (parent, succs) in &expanded {
                        succ_counts[*parent] =
                            u32::try_from(succs.len()).unwrap_or(u32::MAX - 1);
                        if succs.is_empty() {
                            report.terminal_states += 1;
                            if !states[*parent].is_quiescent() {
                                report.deadlocks.push(Deadlock {
                                    trace: rebuild_trace(*parent, &states, &parents),
                                });
                            }
                        }
                    }
                    'par_merge: for (parent, succs) in expanded {
                        for (rule, succ, fp) in succs {
                            if merge(
                                parent,
                                rule,
                                succ,
                                fp,
                                &mut states,
                                &mut parents,
                                &mut succ_counts,
                                &mut report,
                            ) {
                                break 'par_merge;
                            }
                        }
                    }
                }
                _ => {
                    'seq_merge: for &parent in &frontier {
                        let pruned =
                            self.opts.prune.as_ref().is_some_and(|prune| prune(&states[parent]));
                        if pruned {
                            scratch.clear();
                        } else {
                            self.rules.successors_into(&states[parent], &mut scratch);
                        }
                        succ_counts[parent] =
                            u32::try_from(scratch.len()).unwrap_or(u32::MAX - 1);
                        if scratch.is_empty() {
                            report.terminal_states += 1;
                            if !states[parent].is_quiescent() {
                                report.deadlocks.push(Deadlock {
                                    trace: rebuild_trace(parent, &states, &parents),
                                });
                            }
                            continue;
                        }
                        for (rule, succ) in scratch.drain(..) {
                            let fp = succ.fingerprint();
                            if merge(
                                parent,
                                rule,
                                succ,
                                fp,
                                &mut states,
                                &mut parents,
                                &mut succ_counts,
                                &mut report,
                            ) {
                                break 'seq_merge;
                            }
                        }
                    }
                }
            }

            if report.violations.len() >= self.opts.max_violations
                && !report.violations.is_empty()
            {
                break 'outer;
            }

            // Phase 3: check properties of the newly *stored* states —
            // in parallel over the pool when available, with violations
            // applied in deterministic discovery order either way.
            if !props.is_empty() && !new_indices.is_empty() {
                match pool {
                    Some(pool) if new_indices.len() >= 2 * self.opts.threads => {
                        let mut found = pool.check(&new_indices, &states);
                        found.sort_by_key(|&(id, prop_idx, _)| (id, prop_idx));
                        for (id, prop_idx, detail) in found {
                            report.violations.push(Violation {
                                property: props[prop_idx].name().to_string(),
                                detail,
                                trace: rebuild_trace(id, &states, &parents),
                            });
                            if report.violations.len() >= self.opts.max_violations {
                                break 'outer;
                            }
                        }
                    }
                    _ => {
                        for &id in &new_indices {
                            self.check_state(id, &states, &parents, props, &mut report);
                            if report.violations.len() >= self.opts.max_violations
                                && !report.violations.is_empty()
                            {
                                break 'outer;
                            }
                        }
                    }
                }
            }

            depth += 1;
            report.depth = depth;
            if report.truncated {
                break;
            }
            frontier = new_indices;
        }

        // Terminal statistics were collected on the fly; they are only
        // meaningful (and only reported, matching the naive checker) when
        // the exploration ran to completion with no violations.
        if report.truncated || !report.violations.is_empty() {
            report.terminal_states = 0;
            report.deadlocks.clear();
        }

        report.rule_firings = self
            .rules
            .rule_ids()
            .iter()
            .zip(&firings)
            .filter(|(_, &n)| n > 0)
            .map(|(&id, &n)| (id, n))
            .collect();
        report.states = states.len();
        report.elapsed = start.elapsed();
        Exploration { report, states, successor_counts: succ_counts }
    }

    /// Property-check a successor that was *not* stored because the state
    /// cap was already reached. Its trace is its parent's trace plus the
    /// final step.
    #[allow(clippy::too_many_arguments)]
    fn check_transient(
        &self,
        parent: usize,
        rule: RuleId,
        succ: &SystemState,
        states: &[Arc<SystemState>],
        parents: &[Option<(usize, RuleId)>],
        props: &[&dyn Property],
        report: &mut Report,
    ) {
        for p in props {
            if let crate::property::PropertyOutcome::Violated(detail) = p.check(succ) {
                let mut trace = rebuild_trace(parent, states, parents);
                trace.steps.push(Step { rule, state: succ.clone() });
                report.violations.push(Violation {
                    property: p.name().to_string(),
                    detail,
                    trace,
                });
                if report.violations.len() >= self.opts.max_violations {
                    return;
                }
            }
        }
    }

    fn check_state(
        &self,
        id: usize,
        states: &[Arc<SystemState>],
        parents: &[Option<(usize, RuleId)>],
        props: &[&dyn Property],
        report: &mut Report,
    ) {
        let st = &states[id];
        for p in props {
            let outcome = p.check(st);
            if let crate::property::PropertyOutcome::Violated(detail) = outcome {
                report.violations.push(Violation {
                    property: p.name().to_string(),
                    detail,
                    trace: rebuild_trace(id, states, parents),
                });
                if report.violations.len() >= self.opts.max_violations {
                    return;
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // The naive reference implementation.
    // -----------------------------------------------------------------

    /// The pre-optimisation exploration algorithm, retained verbatim as
    /// the oracle for differential testing and as the baseline of the
    /// `mc_throughput` bench: a `HashMap<Arc<SystemState>, usize>` visited
    /// set (full SipHash per probe), freshly allocated successor vectors,
    /// per-level `String`-free but allocation-heavy merging, and a
    /// terminal-state rescan that re-runs successor generation over every
    /// reached state after the search.
    #[must_use]
    pub fn explore_naive(&self, initial: &SystemState, props: &[&dyn Property]) -> Exploration {
        let start = Instant::now();
        let mut report = Report::default();

        let mut states: Vec<Arc<SystemState>> = Vec::new();
        let mut parents: Vec<Option<(usize, RuleId)>> = Vec::new();
        let mut index: HashMap<Arc<SystemState>, usize> = HashMap::new();

        let init = Arc::new(initial.clone());
        states.push(Arc::clone(&init));
        parents.push(None);
        index.insert(init, 0);

        self.check_state(0, &states, &parents, props, &mut report);

        let mut frontier: Vec<usize> = vec![0];
        let mut depth = 0usize;

        'outer: while !frontier.is_empty() {
            if let Some(md) = self.opts.max_depth {
                if depth >= md {
                    report.truncated = true;
                    break;
                }
            }

            let mut expanded = Vec::new();
            for &id in &frontier {
                let st = &states[id];
                if let Some(prune) = &self.opts.prune {
                    if prune(st) {
                        continue;
                    }
                }
                for (rule, succ) in self.rules.successors_naive(st) {
                    expanded.push((id, rule, succ));
                }
            }

            let mut new_indices = Vec::new();
            for (parent, rule, succ) in expanded {
                *report.rule_firings.entry(rule).or_insert(0) += 1;
                report.transitions += 1;
                let succ = Arc::new(succ);
                if index.contains_key(&succ) {
                    continue;
                }
                let id = states.len();
                states.push(Arc::clone(&succ));
                parents.push(Some((parent, rule)));
                index.insert(succ, id);
                new_indices.push(id);
                if states.len() >= self.opts.max_states {
                    report.truncated = true;
                    break;
                }
            }

            for &id in &new_indices {
                self.check_state(id, &states, &parents, props, &mut report);
                if report.violations.len() >= self.opts.max_violations
                    && !report.violations.is_empty()
                {
                    break 'outer;
                }
            }

            depth += 1;
            report.depth = depth;
            if report.truncated {
                break;
            }
            frontier = new_indices;
        }

        // The naive terminal-state rescan: a second full pass of
        // successor generation over every reached state.
        let mut succ_counts = vec![NOT_EXPANDED; states.len()];
        if !report.truncated && report.violations.is_empty() {
            for (id, st) in states.iter().enumerate() {
                let n = self.naive_successor_count(st);
                succ_counts[id] = u32::try_from(n).unwrap_or(u32::MAX - 1);
                if n == 0 {
                    report.terminal_states += 1;
                    if !st.is_quiescent() {
                        report.deadlocks.push(Deadlock {
                            trace: rebuild_trace(id, &states, &parents),
                        });
                    }
                }
            }
        }

        report.states = states.len();
        report.elapsed = start.elapsed();
        Exploration { report, states, successor_counts: succ_counts }
    }

    fn naive_successor_count(&self, s: &SystemState) -> usize {
        if let Some(prune) = &self.opts.prune {
            if prune(s) {
                return 0;
            }
        }
        self.rules.successors_naive(s).len()
    }
}

// ---------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------

/// A unit of work handed to the pool.
enum Job {
    /// Expand a chunk of frontier states (arena id + state).
    Expand { chunk: usize, items: Vec<(usize, Arc<SystemState>)> },
    /// Property-check a chunk of freshly stored states.
    Check { chunk: usize, items: Vec<(usize, Arc<SystemState>)> },
}

/// A finished unit of work.
enum JobResult {
    /// Per input state: its full successor list with fingerprints.
    Expanded { chunk: usize, out: Vec<ExpandedState> },
    /// `(state id, property index, violation detail)` triples.
    Checked { chunk: usize, out: Vec<(usize, usize, String)> },
}

struct JobQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between the driver and the persistent workers. Workers
/// are spawned once per [`ModelChecker::explore`] call inside a
/// [`std::thread::scope`] and live for the whole search — no per-level
/// thread spawning, no per-level lock on a merged output vector.
struct PoolShared<'a> {
    rules: &'a Ruleset,
    prune: Option<&'a Prune>,
    props: &'a [&'a dyn Property],
    queue: Mutex<JobQueue>,
    work_cv: Condvar,
    results: Mutex<Vec<JobResult>>,
    done_cv: Condvar,
}

impl<'a> PoolShared<'a> {
    fn new(rules: &'a Ruleset, prune: Option<&'a Prune>, props: &'a [&'a dyn Property]) -> Self {
        PoolShared {
            rules,
            prune,
            props,
            queue: Mutex::new(JobQueue { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
            results: Mutex::new(Vec::new()),
            done_cv: Condvar::new(),
        }
    }

    fn shutdown(&self) {
        self.queue.lock().expect("queue poisoned").shutdown = true;
        self.work_cv.notify_all();
    }

    /// Worker body: pull jobs until shutdown, reusing one successor
    /// scratch buffer across all jobs (the per-worker output buffer of
    /// the frontier pipeline).
    fn worker_loop(&self) {
        let mut scratch: Vec<(RuleId, SystemState)> = Vec::new();
        loop {
            let job = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.work_cv.wait(q).expect("queue poisoned");
                }
            };
            let result = match job {
                Job::Expand { chunk, items } => {
                    let mut out = Vec::with_capacity(items.len());
                    for (id, state) in items {
                        if self.prune.is_some_and(|prune| prune(&state)) {
                            out.push((id, Vec::new()));
                            continue;
                        }
                        self.rules.successors_into(&state, &mut scratch);
                        let succs = scratch
                            .drain(..)
                            .map(|(rule, succ)| {
                                let fp = succ.fingerprint();
                                (rule, succ, fp)
                            })
                            .collect();
                        out.push((id, succs));
                    }
                    JobResult::Expanded { chunk, out }
                }
                Job::Check { chunk, items } => {
                    let mut out = Vec::new();
                    for (id, state) in items {
                        for (prop_idx, p) in self.props.iter().enumerate() {
                            if let crate::property::PropertyOutcome::Violated(detail) =
                                p.check(&state)
                            {
                                out.push((id, prop_idx, detail));
                            }
                        }
                    }
                    JobResult::Checked { chunk, out }
                }
            };
            self.results.lock().expect("results poisoned").push(result);
            self.done_cv.notify_all();
        }
    }

    /// Enqueue `jobs` and block until all have completed.
    fn submit_and_wait(&self, jobs: Vec<Job>) -> Vec<JobResult> {
        let n = jobs.len();
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            q.jobs.extend(jobs);
        }
        self.work_cv.notify_all();
        let mut results = self.results.lock().expect("results poisoned");
        while results.len() < n {
            results = self.done_cv.wait(results).expect("results poisoned");
        }
        std::mem::take(&mut *results)
    }

    /// Chunk size balancing queue overhead against load balance.
    fn chunk_size(len: usize) -> usize {
        (len / 64).clamp(16, 512)
    }

    /// Expand a frontier across the pool, returning per-state successor
    /// lists in frontier order (deterministic merge by chunk index).
    fn expand(&self, frontier: &[usize], states: &[Arc<SystemState>]) -> Vec<ExpandedState> {
        let chunk_size = Self::chunk_size(frontier.len());
        let jobs: Vec<Job> = frontier
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk, ids)| Job::Expand {
                chunk,
                items: ids.iter().map(|&id| (id, Arc::clone(&states[id]))).collect(),
            })
            .collect();
        let mut results = self.submit_and_wait(jobs);
        results.sort_by_key(|r| match r {
            JobResult::Expanded { chunk, .. } | JobResult::Checked { chunk, .. } => *chunk,
        });
        results
            .into_iter()
            .flat_map(|r| match r {
                JobResult::Expanded { out, .. } => out,
                JobResult::Checked { .. } => unreachable!("expand received a check result"),
            })
            .collect()
    }

    /// Property-check freshly stored states across the pool, returning
    /// `(state id, property index, detail)` triples (unordered; the
    /// driver sorts by discovery order).
    fn check(&self, ids: &[usize], states: &[Arc<SystemState>]) -> Vec<(usize, usize, String)> {
        let chunk_size = Self::chunk_size(ids.len());
        let jobs: Vec<Job> = ids
            .chunks(chunk_size)
            .enumerate()
            .map(|(chunk, ids)| Job::Check {
                chunk,
                items: ids.iter().map(|&id| (id, Arc::clone(&states[id]))).collect(),
            })
            .collect();
        self.submit_and_wait(jobs)
            .into_iter()
            .flat_map(|r| match r {
                JobResult::Checked { out, .. } => out,
                JobResult::Expanded { .. } => unreachable!("check received an expand result"),
            })
            .collect()
    }
}

/// Rebuild the trace from the initial state to state `id` via parent
/// links.
fn rebuild_trace(
    id: usize,
    states: &[Arc<SystemState>],
    parents: &[Option<(usize, RuleId)>],
) -> Trace {
    let mut rev = Vec::new();
    let mut cur = id;
    while let Some((parent, rule)) = parents[cur] {
        rev.push(Step { rule, state: (*states[cur]).clone() });
        cur = parent;
    }
    rev.reverse();
    Trace { initial: (*states[cur]).clone(), steps: rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{boolean_property, SwmrProperty};
    use cxl_core::instr::programs;
    use cxl_core::{ProtocolConfig, Relaxation};

    fn checker(cfg: ProtocolConfig) -> ModelChecker {
        ModelChecker::new(Ruleset::new(cfg))
    }

    #[test]
    fn empty_programs_yield_single_quiescent_state() {
        let mc = checker(ProtocolConfig::strict());
        let exp = mc.explore(&SystemState::initial(vec![], vec![]), &[&SwmrProperty]);
        assert_eq!(exp.report.states, 1);
        assert_eq!(exp.report.terminal_states, 1);
        assert!(exp.report.clean());
        assert_eq!(exp.is_terminal(0), Some(true));
    }

    #[test]
    fn single_load_explores_and_terminates_cleanly() {
        let mc = checker(ProtocolConfig::strict());
        let exp = mc.explore(&SystemState::initial(programs::load(), vec![]), &[&SwmrProperty]);
        assert!(exp.report.clean(), "{}", exp.report);
        assert!(exp.report.states > 3);
        assert!(!exp.report.truncated);
        // Every terminal state is quiescent; the load must complete.
        assert!(exp.report.terminal_states >= 1);
        assert_eq!(exp.terminal_indices().count(), exp.report.terminal_states);
    }

    #[test]
    fn store_load_race_is_coherent_under_strict_config() {
        let mc = checker(ProtocolConfig::strict());
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(report.clean(), "{report}");
        assert!(report.states > 20, "the race should produce real interleaving");
    }

    #[test]
    fn violation_traces_replay_from_initial_state() {
        // Force a violation with a trivially false property and confirm the
        // trace replays.
        let mc = checker(ProtocolConfig::strict());
        let init = SystemState::initial(programs::load(), vec![]);
        let p = boolean_property("no_isad", |s: &SystemState| {
            s.dev(cxl_core::DeviceId::D1).cache.state != cxl_core::DState::ISAD
        });
        let report = mc.check(&init, &[&p]);
        assert_eq!(report.violations.len(), 1);
        let trace = &report.violations[0].trace;
        // Replay the trace through the rule engine.
        let rules = Ruleset::new(ProtocolConfig::strict());
        let mut cur = trace.initial.clone();
        for step in &trace.steps {
            cur = rules.try_fire(step.rule, &cur).expect("trace step must be enabled");
            assert_eq!(&cur, &step.state, "trace state mismatch");
        }
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        let init = SystemState::initial(programs::store(1), programs::store(2));
        let seq = checker(ProtocolConfig::strict()).explore(&init, &[]);
        let opts = CheckOptions { threads: 4, ..CheckOptions::default() };
        let par = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts)
            .explore(&init, &[]);
        assert_eq!(seq.report.states, par.report.states);
        assert_eq!(seq.report.transitions, par.report.transitions);
        // Deterministic merge: the discovery order itself matches.
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.successor_counts, par.successor_counts);
    }

    #[test]
    fn optimized_exploration_matches_naive_reference() {
        let init = SystemState::initial(programs::stores(0, 2), programs::loads(2));
        for cfg in [
            ProtocolConfig::strict(),
            ProtocolConfig::full(),
            ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        ] {
            let mc = checker(cfg);
            let fast = mc.explore(&init, &[]);
            let naive = mc.explore_naive(&init, &[]);
            assert_eq!(fast.report.states, naive.report.states);
            assert_eq!(fast.report.transitions, naive.report.transitions);
            assert_eq!(fast.report.depth, naive.report.depth);
            assert_eq!(fast.report.terminal_states, naive.report.terminal_states);
            assert_eq!(fast.report.rule_firings, naive.report.rule_firings);
            assert_eq!(fast.states, naive.states, "discovery order must match");
            assert_eq!(fast.successor_counts, naive.successor_counts);
        }
    }

    #[test]
    fn prune_limits_expansion() {
        let init = SystemState::initial(programs::load(), vec![]);
        let opts = CheckOptions {
            prune: Some(Arc::new(|s: &SystemState| s.counter > 0) as Prune),
            ..CheckOptions::default()
        };
        let mc = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts);
        let exp = mc.explore(&init, &[]);
        assert_eq!(exp.report.states, 2, "only the first transition survives pruning");
    }

    #[test]
    fn max_states_truncates() {
        let init = SystemState::initial(programs::stores(0, 3), programs::loads(3));
        let opts = CheckOptions { max_states: 50, ..CheckOptions::default() };
        let mc = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts);
        let exp = mc.explore(&init, &[]);
        assert!(exp.report.truncated);
        assert!(exp.report.states <= 51);
    }

    #[test]
    fn truncated_batches_are_still_property_checked() {
        // Regression test: states generated in the same BFS batch after
        // `max_states` is reached used to be silently dropped without a
        // property check. With a cap of 1, every state beyond the initial
        // one is over-cap — the violating ISAD state must still be found.
        let init = SystemState::initial(programs::load(), vec![]);
        let opts = CheckOptions { max_states: 1, ..CheckOptions::default() };
        let mc = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts);
        let p = boolean_property("no_isad", |s: &SystemState| {
            s.dev(cxl_core::DeviceId::D1).cache.state != cxl_core::DState::ISAD
        });
        let report = mc.check(&init, &[&p]);
        assert!(report.truncated);
        assert_eq!(report.violations.len(), 1, "over-cap state must be checked");
        // The transient trace still replays.
        let trace = &report.violations[0].trace;
        let rules = Ruleset::new(ProtocolConfig::strict());
        let mut cur = trace.initial.clone();
        for step in &trace.steps {
            cur = rules.try_fire(step.rule, &cur).expect("transient trace step enabled");
            assert_eq!(&cur, &step.state);
        }
    }

    #[test]
    fn snoop_pushes_go_relaxation_breaks_swmr() {
        // The headline result (paper Table 3 / Figure 5): relaxing
        // Snoop-pushes-GO makes an SWMR violation reachable.
        let mc = checker(ProtocolConfig::relaxed(Relaxation::SnoopPushesGo));
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(
            !report.violations.is_empty(),
            "relaxed model must reach an SWMR violation: {report}"
        );
    }

    #[test]
    fn naive_tracking_relaxation_breaks_swmr() {
        let mc = checker(ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking));
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(!report.violations.is_empty(), "naive tracking must violate SWMR: {report}");
    }

    #[test]
    fn parallel_property_checking_matches_sequential() {
        let init = SystemState::initial(programs::store(42), programs::load());
        let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
        let seq = checker(cfg).explore(&init, &[&SwmrProperty]);
        let opts = CheckOptions { threads: 4, ..CheckOptions::default() };
        let par = ModelChecker::with_options(Ruleset::new(cfg), opts)
            .explore(&init, &[&SwmrProperty]);
        assert_eq!(seq.report.violations.len(), par.report.violations.len());
        let (a, b) = (&seq.report.violations[0], &par.report.violations[0]);
        assert_eq!(a.property, b.property);
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.trace.last_state(), b.trace.last_state());
    }
}
