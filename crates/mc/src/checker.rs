//! The explicit-state model checker.
//!
//! The paper explores its transition system inside Isabelle via the
//! `value` command with manual pruning (§5); here a breadth-first
//! enumeration with hashed state deduplication plays that role, made
//! exhaustive rather than semi-automatic. For bounded device programs the
//! model is finite-state (the invariant guarantees singleton channels), so
//! exhaustive exploration decides SWMR for every bounded configuration.

use crate::property::Property;
use crate::report::{Deadlock, Report, Step, Trace, Violation};
use cxl_core::{RuleId, Ruleset, SystemState};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A pruning predicate: states for which it returns `true` are recorded
/// but not expanded. This reproduces the paper's §5 practice of "manually
/// prun\[ing\] the tree of possible paths by adding extra predicates, in
/// order to guide Isabelle towards a solution".
pub type Prune = Arc<dyn Fn(&SystemState) -> bool + Send + Sync>;

/// Exploration options.
#[derive(Clone)]
pub struct CheckOptions {
    /// Stop after this many distinct states (the exploration is then
    /// marked truncated).
    pub max_states: usize,
    /// Stop after this BFS depth, if set.
    pub max_depth: Option<usize>,
    /// Stop after collecting this many property violations.
    pub max_violations: usize,
    /// Worker threads for successor expansion and property checking.
    pub threads: usize,
    /// Optional pruning predicate (see [`Prune`]).
    pub prune: Option<Prune>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 10_000_000,
            max_depth: None,
            max_violations: 1,
            threads: 1,
            prune: None,
        }
    }
}

impl std::fmt::Debug for CheckOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckOptions")
            .field("max_states", &self.max_states)
            .field("max_depth", &self.max_depth)
            .field("max_violations", &self.max_violations)
            .field("threads", &self.threads)
            .field("prune", &self.prune.is_some())
            .finish()
    }
}

/// The result of [`ModelChecker::explore`]: the report plus the full set
/// of reachable states (the exact universe the obligation matrix of
/// `cxl-sketch` quantifies over).
#[derive(Debug)]
pub struct Exploration {
    /// Statistics and findings.
    pub report: Report,
    /// Every distinct state visited, in discovery (BFS) order.
    pub states: Vec<Arc<SystemState>>,
}

/// A breadth-first explicit-state model checker over a [`Ruleset`].
///
/// # Examples
///
/// ```
/// use cxl_core::{ProtocolConfig, Ruleset, SystemState};
/// use cxl_core::instr::programs;
/// use cxl_mc::{ModelChecker, SwmrProperty};
///
/// let mc = ModelChecker::new(Ruleset::new(ProtocolConfig::strict()));
/// let init = SystemState::initial(programs::store(42), programs::load());
/// let report = mc.check(&init, &[&SwmrProperty]);
/// assert!(report.clean());
/// ```
#[derive(Debug)]
pub struct ModelChecker {
    rules: Ruleset,
    opts: CheckOptions,
}

impl ModelChecker {
    /// A checker with default options.
    #[must_use]
    pub fn new(rules: Ruleset) -> Self {
        ModelChecker { rules, opts: CheckOptions::default() }
    }

    /// A checker with explicit options.
    #[must_use]
    pub fn with_options(rules: Ruleset, opts: CheckOptions) -> Self {
        ModelChecker { rules, opts }
    }

    /// The rule set being explored.
    #[must_use]
    pub fn rules(&self) -> &Ruleset {
        &self.rules
    }

    /// The exploration options.
    #[must_use]
    pub fn options(&self) -> &CheckOptions {
        &self.opts
    }

    /// Explore and return just the report.
    #[must_use]
    pub fn check(&self, initial: &SystemState, props: &[&dyn Property]) -> Report {
        self.explore(initial, props).report
    }

    /// Explore all states reachable from `initial`, checking `props` on
    /// every state (including the initial one), detecting non-quiescent
    /// terminal states, and retaining the visited set.
    #[must_use]
    pub fn explore(&self, initial: &SystemState, props: &[&dyn Property]) -> Exploration {
        let start = Instant::now();
        let mut report = Report::default();

        // Arena of discovered states + parent links for trace rebuilding.
        let mut states: Vec<Arc<SystemState>> = Vec::new();
        let mut parents: Vec<Option<(usize, RuleId)>> = Vec::new();
        let mut index: HashMap<Arc<SystemState>, usize> = HashMap::new();

        let init = Arc::new(initial.clone());
        states.push(Arc::clone(&init));
        parents.push(None);
        index.insert(init, 0);

        self.check_state(0, &states, &parents, props, &mut report);

        let mut frontier: Vec<usize> = vec![0];
        let mut depth = 0usize;

        'outer: while !frontier.is_empty() {
            if let Some(md) = self.opts.max_depth {
                if depth >= md {
                    report.truncated = true;
                    break;
                }
            }

            // Phase 1: expand the frontier (possibly in parallel).
            let expanded = self.expand(&frontier, &states);

            // Phase 2: merge, dedupe, link parents, count firings.
            let mut new_indices = Vec::new();
            for (parent, rule, succ) in expanded {
                *report.rule_firings.entry(rule.name()).or_insert(0) += 1;
                report.transitions += 1;
                let succ = Arc::new(succ);
                if let Some(&_existing) = index.get(&succ) {
                    continue;
                }
                let id = states.len();
                states.push(Arc::clone(&succ));
                parents.push(Some((parent, rule)));
                index.insert(succ, id);
                new_indices.push(id);
                if states.len() >= self.opts.max_states {
                    report.truncated = true;
                    break;
                }
            }

            // Phase 3: check properties and terminal status of new states.
            for &id in &new_indices {
                self.check_state(id, &states, &parents, props, &mut report);
                if report.violations.len() >= self.opts.max_violations
                    && !report.violations.is_empty()
                {
                    break 'outer;
                }
            }

            // Terminal detection for the *previous* frontier happens via
            // expansion: a frontier state with no successors is terminal.
            depth += 1;
            report.depth = depth;
            if report.truncated {
                break;
            }
            frontier = new_indices;
        }

        // Terminal states: re-scan all states for ones with no successors.
        // (Cheap relative to exploration; avoids bookkeeping corner cases
        // when the search stops early.)
        if !report.truncated && report.violations.is_empty() {
            for (id, st) in states.iter().enumerate() {
                if self.successor_count(st) == 0 {
                    report.terminal_states += 1;
                    if !st.is_quiescent() {
                        report.deadlocks.push(Deadlock {
                            trace: rebuild_trace(id, &states, &parents),
                        });
                    }
                }
            }
        }

        report.states = states.len();
        report.elapsed = start.elapsed();
        Exploration { report, states }
    }

    /// All states reachable from `initial` (no properties checked).
    #[must_use]
    pub fn reachable(&self, initial: &SystemState) -> Vec<Arc<SystemState>> {
        self.explore(initial, &[]).states
    }

    fn successor_count(&self, s: &SystemState) -> usize {
        if let Some(prune) = &self.opts.prune {
            if prune(s) {
                return 0;
            }
        }
        self.rules.successors(s).len()
    }

    fn expand(
        &self,
        frontier: &[usize],
        states: &[Arc<SystemState>],
    ) -> Vec<(usize, RuleId, SystemState)> {
        let expand_one = |&id: &usize| -> Vec<(usize, RuleId, SystemState)> {
            let st = &states[id];
            if let Some(prune) = &self.opts.prune {
                if prune(st) {
                    return Vec::new();
                }
            }
            self.rules
                .successors(st)
                .into_iter()
                .map(|(rule, succ)| (id, rule, succ))
                .collect()
        };

        if self.opts.threads <= 1 || frontier.len() < 2 * self.opts.threads {
            frontier.iter().flat_map(&expand_one).collect()
        } else {
            let chunk = frontier.len().div_ceil(self.opts.threads);
            type ChunkOut = Vec<(usize, RuleId, SystemState)>;
            let results: Mutex<Vec<(usize, ChunkOut)>> =
                Mutex::new(Vec::new());
            crossbeam::thread::scope(|scope| {
                for (ci, ids) in frontier.chunks(chunk).enumerate() {
                    let results = &results;
                    scope.spawn(move |_| {
                        let out: Vec<_> = ids.iter().flat_map(expand_one).collect();
                        results.lock().push((ci, out));
                    });
                }
            })
            .expect("worker thread panicked");
            let mut chunks = results.into_inner();
            chunks.sort_by_key(|(ci, _)| *ci);
            chunks.into_iter().flat_map(|(_, v)| v).collect()
        }
    }

    fn check_state(
        &self,
        id: usize,
        states: &[Arc<SystemState>],
        parents: &[Option<(usize, RuleId)>],
        props: &[&dyn Property],
        report: &mut Report,
    ) {
        let st = &states[id];
        for p in props {
            let outcome = p.check(st);
            if let crate::property::PropertyOutcome::Violated(detail) = outcome {
                report.violations.push(Violation {
                    property: p.name().to_string(),
                    detail,
                    trace: rebuild_trace(id, states, parents),
                });
                if report.violations.len() >= self.opts.max_violations {
                    return;
                }
            }
        }
    }
}

/// Rebuild the trace from the initial state to state `id` via parent
/// links.
fn rebuild_trace(
    id: usize,
    states: &[Arc<SystemState>],
    parents: &[Option<(usize, RuleId)>],
) -> Trace {
    let mut rev = Vec::new();
    let mut cur = id;
    while let Some((parent, rule)) = parents[cur] {
        rev.push(Step { rule, state: (*states[cur]).clone() });
        cur = parent;
    }
    rev.reverse();
    Trace { initial: (*states[cur]).clone(), steps: rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{boolean_property, SwmrProperty};
    use cxl_core::instr::programs;
    use cxl_core::{ProtocolConfig, Relaxation};

    fn checker(cfg: ProtocolConfig) -> ModelChecker {
        ModelChecker::new(Ruleset::new(cfg))
    }

    #[test]
    fn empty_programs_yield_single_quiescent_state() {
        let mc = checker(ProtocolConfig::strict());
        let exp = mc.explore(&SystemState::initial(vec![], vec![]), &[&SwmrProperty]);
        assert_eq!(exp.report.states, 1);
        assert_eq!(exp.report.terminal_states, 1);
        assert!(exp.report.clean());
    }

    #[test]
    fn single_load_explores_and_terminates_cleanly() {
        let mc = checker(ProtocolConfig::strict());
        let exp = mc.explore(&SystemState::initial(programs::load(), vec![]), &[&SwmrProperty]);
        assert!(exp.report.clean(), "{}", exp.report);
        assert!(exp.report.states > 3);
        assert!(!exp.report.truncated);
        // Every terminal state is quiescent; the load must complete.
        assert!(exp.report.terminal_states >= 1);
    }

    #[test]
    fn store_load_race_is_coherent_under_strict_config() {
        let mc = checker(ProtocolConfig::strict());
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(report.clean(), "{report}");
        assert!(report.states > 20, "the race should produce real interleaving");
    }

    #[test]
    fn violation_traces_replay_from_initial_state() {
        // Force a violation with a trivially false property and confirm the
        // trace replays.
        let mc = checker(ProtocolConfig::strict());
        let init = SystemState::initial(programs::load(), vec![]);
        let p = boolean_property("no_isad", |s: &SystemState| {
            s.dev(cxl_core::DeviceId::D1).cache.state != cxl_core::DState::ISAD
        });
        let report = mc.check(&init, &[&p]);
        assert_eq!(report.violations.len(), 1);
        let trace = &report.violations[0].trace;
        // Replay the trace through the rule engine.
        let rules = Ruleset::new(ProtocolConfig::strict());
        let mut cur = trace.initial.clone();
        for step in &trace.steps {
            cur = rules.try_fire(step.rule, &cur).expect("trace step must be enabled");
            assert_eq!(&cur, &step.state, "trace state mismatch");
        }
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        let init = SystemState::initial(programs::store(1), programs::store(2));
        let seq = checker(ProtocolConfig::strict()).explore(&init, &[]);
        let opts = CheckOptions { threads: 4, ..CheckOptions::default() };
        let par = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts)
            .explore(&init, &[]);
        assert_eq!(seq.report.states, par.report.states);
        assert_eq!(seq.report.transitions, par.report.transitions);
    }

    #[test]
    fn prune_limits_expansion() {
        let init = SystemState::initial(programs::load(), vec![]);
        let opts = CheckOptions {
            prune: Some(Arc::new(|s: &SystemState| s.counter > 0) as Prune),
            ..CheckOptions::default()
        };
        let mc = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts);
        let exp = mc.explore(&init, &[]);
        assert_eq!(exp.report.states, 2, "only the first transition survives pruning");
    }

    #[test]
    fn max_states_truncates() {
        let init = SystemState::initial(programs::stores(0, 3), programs::loads(3));
        let opts = CheckOptions { max_states: 50, ..CheckOptions::default() };
        let mc = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts);
        let exp = mc.explore(&init, &[]);
        assert!(exp.report.truncated);
        assert!(exp.report.states <= 51);
    }

    #[test]
    fn snoop_pushes_go_relaxation_breaks_swmr() {
        // The headline result (paper Table 3 / Figure 5): relaxing
        // Snoop-pushes-GO makes an SWMR violation reachable.
        let mc = checker(ProtocolConfig::relaxed(Relaxation::SnoopPushesGo));
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(
            !report.violations.is_empty(),
            "relaxed model must reach an SWMR violation: {report}"
        );
    }

    #[test]
    fn naive_tracking_relaxation_breaks_swmr() {
        let mc = checker(ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking));
        let init = SystemState::initial(programs::store(42), programs::load());
        let report = mc.check(&init, &[&SwmrProperty]);
        assert!(!report.violations.is_empty(), "naive tracking must violate SWMR: {report}");
    }
}
