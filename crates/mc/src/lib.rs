//! # cxl-mc — explicit-state model checking for the CXL.cache model
//!
//! The paper validates its Isabelle model by bounded exploration (the
//! `value` command with manual pruning, §5) and by a mechanised inductive
//! proof (§6). This crate is the exploration substrate of the Rust
//! reproduction: a breadth-first explicit-state model checker over the
//! `cxl-core` transition system with
//!
//! - hashed state deduplication and parent links for counterexample
//!   traces (the raw material of the paper's Tables 1–3);
//! - pluggable safety [`Property`]s — [`SwmrProperty`] (Definition 6.1),
//!   [`InvariantProperty`] (the §6 conjunct invariant), and ad-hoc
//!   closures;
//! - deadlock (non-quiescent terminal state) detection;
//! - optional pruning predicates, reproducing the paper's guided-search
//!   workflow;
//! - shard-owned parallel exploration ([`CheckOptions::shards`]): the
//!   fingerprint space is partitioned across workers, each owning a
//!   private dedup index and arena segment, with successors routed as
//!   packed-bytes messages by [`cxl_core::shard_of`] — no shared
//!   visited set, bit-identical results to the sequential driver;
//! - a decoded-frontier ring ([`CheckOptions::frontier_ring`]) that
//!   keeps the current BFS level decoded, trading bounded memory for
//!   skipped per-expansion decodes;
//! - a resilience layer for long campaigns: periodic atomic
//!   [`Checkpoint`]s with exact resume ([`ModelChecker::explore_resumed`]),
//!   panic-isolated workers that quarantine poison states instead of
//!   crashing, a wall-clock [`CheckOptions::time_budget`] watchdog, and a
//!   graceful-degradation ladder under [`CheckOptions::mem_budget`]
//!   pressure (shed → emergency checkpoint → truncate, every step
//!   recorded in [`Report::sheds`]);
//! - a telemetry tap ([`CheckOptions::telemetry`]): per-BFS-level metrics
//!   and a bounded flight recorder ([`FlightRing`]) computed only at
//!   level-commit barriers — zero cost and bit-identical results when no
//!   [`Recorder`] is attached. The flight ring rides inside checkpoints,
//!   so resumed runs carry their pre-kill event history.
//!
//! For bounded device programs the model is finite-state, so exploration
//! here is *exhaustive* — every reachable state is checked, which is the
//! reproduction's substitute for the theorem-prover proof (see
//! `DESIGN.md` §4).
//!
//! ## Example: the headline verification
//!
//! ```
//! use cxl_core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
//! use cxl_core::instr::programs;
//! use cxl_mc::{ModelChecker, SwmrProperty};
//!
//! let init = SystemState::initial(programs::store(42), programs::load());
//!
//! // The faithful model is coherent…
//! let strict = ModelChecker::new(Ruleset::new(ProtocolConfig::strict()));
//! assert!(strict.check(&init, &[&SwmrProperty]).clean());
//!
//! // …and relaxing Snoop-pushes-GO breaks SWMR (paper Table 3).
//! let relaxed = ModelChecker::new(Ruleset::new(ProtocolConfig::relaxed(
//!     Relaxation::SnoopPushesGo,
//! )));
//! assert!(!relaxed.check(&init, &[&SwmrProperty]).clean());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checker;
mod checkpoint;
mod property;
mod report;

pub use checker::{
    CheckOptions, Exploration, ModelChecker, Prune, DEFAULT_FRONTIER_RING, DEFAULT_MEM_BUDGET,
    DEFAULT_SPILL_BUDGET, NOT_EXPANDED,
};
pub use checkpoint::{
    checkpoint_path, options_fingerprint, Checkpoint, CheckpointError, CheckpointPolicy,
    CHECKPOINT_FILE,
};
pub use cxl_reduce::{
    CanonMode, DataSymmetry, PorMode, Reducer, Reduction, ReductionConfig, ReductionStats,
    BRUTE_ARRANGEMENT_CAP,
};
pub use cxl_telemetry::{
    FlightEvent, FlightKind, FlightRing, LevelRecord, MetricsRecorder, NoopRecorder, PhaseNanos,
    ProgressMode, Recorder, ReductionDelta, RunSummary, ShardLevelStats,
    DEFAULT_FLIGHT_CAPACITY, METRICS_SCHEMA_VERSION,
};
pub use property::{
    boolean_property, FnProperty, InvariantProperty, Property, PropertyOutcome, SwmrProperty,
};
pub use report::{
    Deadlock, DegradationAction, DegradationStep, Quarantine, ReductionSummary, Report, Step,
    Trace, Violation,
};
