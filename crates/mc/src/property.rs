//! Safety properties checked during exploration.
//!
//! The paper checks two kinds of per-state condition: the SWMR property
//! (Definition 6.1) and its strengthened inductive invariant (§6). Both are
//! instances of [`Property`]; litmus tests add ad-hoc closures via
//! [`FnProperty`].

use cxl_core::{swmr, Invariant, SystemState};
use std::fmt;
use std::sync::Arc;

/// The outcome of checking a property on one state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertyOutcome {
    /// The property holds.
    Holds,
    /// The property is violated; the string explains how (e.g. which
    /// invariant conjunct failed).
    Violated(String),
}

impl PropertyOutcome {
    /// Does the property hold?
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, PropertyOutcome::Holds)
    }
}

impl fmt::Display for PropertyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyOutcome::Holds => write!(f, "holds"),
            PropertyOutcome::Violated(why) => write!(f, "violated: {why}"),
        }
    }
}

/// A safety property checked on every explored state.
pub trait Property: Send + Sync {
    /// Short name used in reports (e.g. `SWMR`).
    fn name(&self) -> &str;

    /// Check the property on one state.
    fn check(&self, s: &SystemState) -> PropertyOutcome;
}

/// The Single-Writer-Multiple-Reader property (paper Definition 6.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct SwmrProperty;

impl Property for SwmrProperty {
    fn name(&self) -> &str {
        "SWMR"
    }

    fn check(&self, s: &SystemState) -> PropertyOutcome {
        if swmr(s) {
            PropertyOutcome::Holds
        } else {
            PropertyOutcome::Violated(
                s.device_ids()
                    .map(|d| format!("DCache{d} = {}", s.dev(d).cache))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        }
    }
}

/// The full inductive invariant as a property: reports the first violated
/// conjunct by name.
#[derive(Clone)]
pub struct InvariantProperty {
    name: String,
    invariant: Arc<Invariant>,
}

impl InvariantProperty {
    /// Wrap an invariant.
    #[must_use]
    pub fn new(invariant: Invariant) -> Self {
        InvariantProperty { name: "Invariant".to_string(), invariant: Arc::new(invariant) }
    }

    /// Wrap an invariant under a custom report name.
    #[must_use]
    pub fn named(name: impl Into<String>, invariant: Invariant) -> Self {
        InvariantProperty { name: name.into(), invariant: Arc::new(invariant) }
    }

    /// The wrapped invariant.
    #[must_use]
    pub fn invariant(&self) -> &Invariant {
        &self.invariant
    }
}

impl Property for InvariantProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, s: &SystemState) -> PropertyOutcome {
        match self.invariant.first_violation(s) {
            None => PropertyOutcome::Holds,
            Some(c) => PropertyOutcome::Violated(format!("conjunct {c} — {}", c.doc())),
        }
    }
}

impl fmt::Debug for InvariantProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvariantProperty")
            .field("name", &self.name)
            .field("conjuncts", &self.invariant.len())
            .finish()
    }
}

/// A property defined by a closure, for litmus-test expectations.
pub struct FnProperty<F> {
    name: String,
    f: F,
}

impl<F> FnProperty<F>
where
    F: Fn(&SystemState) -> PropertyOutcome + Send + Sync,
{
    /// Wrap a closure as a property.
    #[must_use]
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnProperty { name: name.into(), f }
    }
}

impl<F> Property for FnProperty<F>
where
    F: Fn(&SystemState) -> PropertyOutcome + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, s: &SystemState) -> PropertyOutcome {
        (self.f)(s)
    }
}

/// Convenience: a boolean closure property (violation message is generic).
#[must_use]
pub fn boolean_property<F>(name: impl Into<String>, f: F) -> FnProperty<impl Fn(&SystemState) -> PropertyOutcome + Send + Sync>
where
    F: Fn(&SystemState) -> bool + Send + Sync,
{
    FnProperty::new(name, move |s: &SystemState| {
        if f(s) {
            PropertyOutcome::Holds
        } else {
            PropertyOutcome::Violated("predicate returned false".to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_core::{DState, DeviceId, ProtocolConfig};

    #[test]
    fn swmr_property_reports_both_caches() {
        let mut s = SystemState::initial(vec![], vec![]);
        s.dev_mut(DeviceId::D1).cache.state = DState::M;
        s.dev_mut(DeviceId::D2).cache.state = DState::M;
        let out = SwmrProperty.check(&s);
        match out {
            PropertyOutcome::Violated(why) => {
                assert!(why.contains("DCache1") && why.contains("DCache2"));
            }
            PropertyOutcome::Holds => panic!("M+M must violate SWMR"),
        }
    }

    #[test]
    fn invariant_property_names_the_conjunct() {
        let prop = InvariantProperty::new(Invariant::for_config(&ProtocolConfig::strict()));
        let mut s = SystemState::initial(vec![], vec![]);
        s.dev_mut(DeviceId::D1).cache.state = DState::S; // host I but a sharer exists
        match prop.check(&s) {
            PropertyOutcome::Violated(why) => assert!(why.contains("conjunct"), "{why}"),
            PropertyOutcome::Holds => panic!("directory drift must be flagged"),
        }
    }

    #[test]
    fn boolean_property_adapts_closures() {
        let p = boolean_property("counter_small", |s: &SystemState| s.counter < 10);
        let mut s = SystemState::initial(vec![], vec![]);
        assert!(p.check(&s).holds());
        s.counter = 11;
        assert!(!p.check(&s).holds());
        assert_eq!(p.name(), "counter_small");
    }
}
