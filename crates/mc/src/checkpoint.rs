//! Checkpoint/resume for long explorations.
//!
//! A verification campaign over the paper's CXL.cache model at N ≥ 3 can
//! run for hours; a killed process used to throw the whole search away.
//! This module persists the checker's complete mid-run state — the packed
//! [`StateArena`], the dedup fingerprints, parent links, successor
//! counts, the BFS frontier, partial report statistics, and the
//! reduction-engine counters — as a single versioned, checksummed file,
//! written atomically (write-then-rename) so a crash mid-write can never
//! clobber the previous good checkpoint.
//!
//! ## Resume semantics
//!
//! Checkpoints are written at **BFS level boundaries**, where the
//! checker's state is exactly "levels `0..depth` fully expanded, frontier
//! = level `depth`". Resuming from such a boundary re-enters the search
//! loop with identical algorithm state, so a resumed run's arena,
//! verdict, and counterexample traces are byte-identical to an
//! uninterrupted run — the property the crash-recovery tests pin.
//!
//! A checkpoint also records whether it *is* such a boundary
//! ([`Checkpoint::resumable`]): stops that land mid-level (`max_states`,
//! the memory budget's hard rung, a violation cap) write a final
//! non-resumable checkpoint whose report can still be reconstituted
//! verbatim ([`crate::ModelChecker::explore_resumed`] then replays the
//! recorded verdict instead of exploring).
//!
//! ## What "matching options" means
//!
//! Resume refuses a checkpoint whose [`options_fingerprint`] differs:
//! the topology, protocol configuration, initial state, and reduction
//! setup must match, because they define the transition system being
//! explored. Resource budgets (`max_states`, `max_depth`, `mem_budget`,
//! `time_budget`) and `threads` are deliberately *excluded* — raising a
//! budget between sessions is the whole point of checkpointed campaigns,
//! and the deterministic merge makes thread count invisible to results.

use crate::report::{
    Deadlock, DegradationAction, DegradationStep, Quarantine, Report, Step, Trace, Violation,
};
use cxl_core::codec::wire::{put_bytes, put_varint, WireReader};
use cxl_core::{CodecError, RuleId, Ruleset, StateArena, StateCodec};
use cxl_reduce::ReductionStats;
use cxl_telemetry::{FlightEvent, FlightKind};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File-name of the rolling checkpoint inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.cxlckpt";

/// Magic prefix of every checkpoint file (includes the major format
/// generation; [`FORMAT_VERSION`] tracks compatible revisions).
const MAGIC: &[u8; 8] = b"CXLCKPT1";

/// Format version written after the magic; readers refuse anything newer.
/// Version 2 (PR 9) appended the flight-recorder event ring after the
/// degradation-ladder section; version-1 files are still read (their
/// ring is simply empty — pre-telemetry campaigns resume untouched).
const FORMAT_VERSION: u64 = 2;

/// Oldest format version this build still reads.
const MIN_FORMAT_VERSION: u64 = 1;

/// The rolling checkpoint path inside `dir`.
#[must_use]
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// Where and how often the checker checkpoints
/// (see [`crate::CheckOptions::checkpoint`]).
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory holding the rolling [`CHECKPOINT_FILE`] (created on the
    /// first write).
    pub dir: PathBuf,
    /// Minimum wall-clock spacing between periodic checkpoints; the
    /// checker writes at the first BFS level boundary after each interval
    /// elapses. [`Duration::ZERO`] checkpoints at *every* boundary —
    /// deterministic, which the crash-recovery tests and kill/resume
    /// smoke runs rely on.
    pub every: Duration,
}

impl CheckpointPolicy {
    /// Default spacing between periodic checkpoints: long enough that
    /// serialization overhead stays negligible against exploration,
    /// short enough that a killed campaign loses at most a minute.
    pub const DEFAULT_EVERY: Duration = Duration::from_secs(60);

    /// A policy writing to `dir` at the default interval.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { dir: dir.into(), every: Self::DEFAULT_EVERY }
    }
}

/// Why a checkpoint could not be written, read, or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while writing or reading.
    Io(std::io::Error),
    /// The file is not a valid checkpoint: bad magic, failed checksum,
    /// truncation, or internally inconsistent content. A corrupted file
    /// is always rejected here — never silently resumed.
    Corrupt(String),
    /// The checkpoint is valid but was written under different
    /// exploration semantics (topology, configuration, initial state, or
    /// reduction setup) than the resuming checker's.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Corrupt(e.to_string())
    }
}

/// Fingerprint of everything that defines the *semantics* of an
/// exploration: device count, protocol configuration, the initial
/// state's packed encoding, and the reduction description. Two checkers
/// with equal fingerprints explore the same transition system and may
/// hand checkpoints to each other; resource budgets and thread counts
/// are excluded by design (see the module docs).
#[must_use]
pub fn options_fingerprint(
    rules: &Ruleset,
    reduction_describe: Option<&str>,
    initial_bytes: &[u8],
) -> u64 {
    let mut buf = Vec::with_capacity(initial_bytes.len() + 128);
    buf.extend_from_slice(b"cxl-mc-checkpoint-v1");
    buf.push(rules.topology().device_count() as u8);
    put_bytes(&mut buf, format!("{:?}", rules.config()).as_bytes());
    put_bytes(&mut buf, initial_bytes);
    put_bytes(&mut buf, reduction_describe.unwrap_or("none").as_bytes());
    StateCodec::fingerprint(&buf)
}

/// A borrowed view of the checker's mid-run state, serialized without
/// copying the arena — the write path. The owned mirror is
/// [`Checkpoint`].
pub(crate) struct CheckpointSource<'a> {
    pub fingerprint: u64,
    pub resumable: bool,
    pub depth: usize,
    pub elapsed: Duration,
    pub transitions: usize,
    pub terminal_states: usize,
    pub truncated: bool,
    pub truncated_by_memory: bool,
    pub truncated_by_time: bool,
    pub arena: &'a StateArena,
    pub parents: &'a [Option<(usize, RuleId)>],
    pub succ_counts: &'a [u32],
    pub frontier: &'a [usize],
    pub firings: &'a [u64],
    pub violations: &'a [Violation],
    pub deadlocks: &'a [Deadlock],
    pub quarantined: &'a [Quarantine],
    pub sheds: &'a [DegradationStep],
    pub reduction_stats: Option<ReductionStats>,
    pub flight: &'a [FlightEvent],
}

impl CheckpointSource<'_> {
    /// Serialize to the versioned wire format, checksum included.
    pub(crate) fn encode(&self, rules: &Ruleset) -> Vec<u8> {
        let arena = self.arena;
        let codec = arena.codec();
        let n = arena.len();
        let mut out = Vec::with_capacity(arena.byte_len() + n * 12 + 256);
        out.extend_from_slice(MAGIC);
        put_varint(&mut out, FORMAT_VERSION);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        let flags = u8::from(self.resumable)
            | u8::from(self.truncated) << 1
            | u8::from(self.truncated_by_memory) << 2
            | u8::from(self.truncated_by_time) << 3;
        out.push(flags);
        out.push(rules.topology().device_count() as u8);
        put_varint(&mut out, self.depth as u64);
        put_varint(&mut out, u64::try_from(self.elapsed.as_nanos()).unwrap_or(u64::MAX));
        put_varint(&mut out, self.transitions as u64);
        put_varint(&mut out, self.terminal_states as u64);

        // The packed store: payload, then per-state lengths (offset
        // deltas), then the dedup fingerprints — which are a pure
        // function of the payload but are stored anyway as an inner
        // integrity layer the reader cross-checks. States are
        // *materialized* to full encodings here: a delta-compressed or
        // partially spilled arena checkpoints as plain full bytes, so
        // resume never needs the writer's extent files or keyframe
        // layout (and plain arenas serialize byte-identically to before
        // delta/spill existed).
        put_varint(&mut out, n as u64);
        let mut payload = Vec::with_capacity(arena.byte_len());
        let mut ends = Vec::with_capacity(n);
        for id in 0..n {
            arena.append_full_bytes(id, &mut payload);
            ends.push(payload.len());
        }
        put_bytes(&mut out, &payload);
        let mut at = 0usize;
        for &end in &ends {
            put_varint(&mut out, (end - at) as u64);
            at = end;
        }
        at = 0;
        for &end in &ends {
            out.extend_from_slice(
                &StateCodec::fingerprint(&payload[at..end]).to_le_bytes(),
            );
            at = end;
        }

        // Parent links (0 = root, else parent id + 1) and rules as dense
        // indices of the resuming rule set.
        for parent in self.parents {
            match parent {
                None => put_varint(&mut out, 0),
                Some((id, rule)) => {
                    put_varint(&mut out, *id as u64 + 1);
                    put_varint(&mut out, rules.dense_index(*rule) as u64);
                }
            }
        }
        for &c in self.succ_counts {
            put_varint(&mut out, u64::from(c));
        }
        put_varint(&mut out, self.frontier.len() as u64);
        for &id in self.frontier {
            put_varint(&mut out, id as u64);
        }
        put_varint(&mut out, self.firings.len() as u64);
        for &c in self.firings {
            put_varint(&mut out, c);
        }

        match self.reduction_stats {
            None => out.push(0),
            Some(stats) => {
                // Tag 2 appends the host-drain ample counter; the canon
                // engine name and group order are derived from config at
                // resume time, so they are deliberately not serialized.
                out.push(2);
                put_varint(&mut out, stats.orbit_canonicalized);
                put_varint(&mut out, stats.value_canonicalized);
                put_varint(&mut out, stats.ample_local);
                put_varint(&mut out, stats.ample_diamond);
                put_varint(&mut out, stats.ample_host_drain);
            }
        }

        let put_trace = |out: &mut Vec<u8>, trace: &Trace| {
            put_bytes(out, &codec.encode(&trace.initial));
            put_varint(out, trace.steps.len() as u64);
            for step in &trace.steps {
                put_varint(out, rules.dense_index(step.rule) as u64);
                put_bytes(out, &codec.encode(&step.state));
            }
        };
        put_varint(&mut out, self.violations.len() as u64);
        for v in self.violations {
            put_bytes(&mut out, v.property.as_bytes());
            put_bytes(&mut out, v.detail.as_bytes());
            put_trace(&mut out, &v.trace);
        }
        put_varint(&mut out, self.deadlocks.len() as u64);
        for d in self.deadlocks {
            put_trace(&mut out, &d.trace);
        }
        put_varint(&mut out, self.quarantined.len() as u64);
        for q in self.quarantined {
            put_varint(&mut out, q.state as u64);
            put_bytes(&mut out, q.message.as_bytes());
        }
        put_varint(&mut out, self.sheds.len() as u64);
        for shed in self.sheds {
            let (tag, reclaimed) = match shed.action {
                DegradationAction::ShedBuffers { reclaimed } => (0u8, reclaimed),
                DegradationAction::EmergencyCheckpoint => (1, 0),
                DegradationAction::Truncate => (2, 0),
            };
            out.push(tag);
            put_varint(&mut out, reclaimed as u64);
            put_varint(&mut out, shed.at_states as u64);
            put_varint(&mut out, shed.footprint as u64);
        }

        // The flight-recorder ring (format version 2): a resumed session
        // inherits the events of the one that died, pre-kill checkpoint
        // writes included (the write event is pushed before encoding).
        put_varint(&mut out, self.flight.len() as u64);
        for event in self.flight {
            put_varint(&mut out, event.seq);
            out.push(event.kind.tag());
            put_varint(&mut out, event.a);
            put_varint(&mut out, event.b);
            put_bytes(&mut out, event.detail.as_bytes());
        }

        let checksum = StateCodec::fingerprint(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Serialize and write to `dir`'s rolling checkpoint file, atomically:
    /// the bytes land in a temporary file (fsynced), which is then renamed
    /// over [`CHECKPOINT_FILE`] — a crash at any point leaves either the
    /// old or the new checkpoint intact, never a torn one.
    pub(crate) fn write_atomic(
        &self,
        rules: &Ruleset,
        dir: &Path,
    ) -> Result<PathBuf, CheckpointError> {
        let bytes = self.encode(rules);
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".{CHECKPOINT_FILE}.tmp"));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        drop(file);
        let path = checkpoint_path(dir);
        // No fsync: the failure domain here is the *process* (kill,
        // panic, OOM), which the page cache survives; paying a forced
        // flush per snapshot would tax short campaigns double-digit
        // percentages. A whole-machine crash can at worst leave a stale
        // or partially-flushed file, and the trailing checksum makes
        // the reader refuse anything incomplete rather than misread it.
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// An exploration checkpoint, decoded and validated — everything needed
/// to continue (or reconstitute) the run via
/// [`crate::ModelChecker::explore_resumed`].
#[derive(Debug)]
pub struct Checkpoint {
    /// [`options_fingerprint`] of the writing checker; resume refuses a
    /// checker whose own fingerprint differs.
    pub fingerprint: u64,
    /// Was this written at a BFS level boundary (so the search can
    /// continue exactly)? False for final checkpoints of mid-level stops,
    /// whose report is reconstituted instead.
    pub resumable: bool,
    /// Fully expanded BFS depth.
    pub depth: usize,
    /// Wall-clock time accumulated by the interrupted session(s).
    pub elapsed: Duration,
    /// Transitions examined so far.
    pub transitions: usize,
    /// Terminal states found so far.
    pub terminal_states: usize,
    /// The writing run's truncation flags (meaningful for reconstitution).
    pub truncated: bool,
    /// Truncated by the memory budget?
    pub truncated_by_memory: bool,
    /// Truncated by the time budget?
    pub truncated_by_time: bool,
    /// The packed store of every state discovered so far.
    pub arena: StateArena,
    /// Dedup fingerprints, index-aligned with the arena (verified against
    /// recomputation at load).
    pub fps: Vec<u64>,
    /// Parent links for trace rebuilding.
    pub parents: Vec<Option<(usize, RuleId)>>,
    /// Per-state successor counts ([`crate::NOT_EXPANDED`] for frontier
    /// states).
    pub succ_counts: Vec<u32>,
    /// The BFS frontier (arena ids of level `depth`).
    pub frontier: Vec<usize>,
    /// Per-rule firing counters, dense-indexed like
    /// [`Ruleset::rule_ids`].
    pub firings: Vec<u64>,
    /// Violations found so far, traces fully decoded.
    pub violations: Vec<Violation>,
    /// Deadlocks found so far.
    pub deadlocks: Vec<Deadlock>,
    /// Quarantined poison states (packed bytes and dump rebuilt from the
    /// arena).
    pub quarantined: Vec<Quarantine>,
    /// Degradation-ladder history.
    pub sheds: Vec<DegradationStep>,
    /// Reduction-engine counters to restore via
    /// [`cxl_reduce::Reducer::restore_stats`].
    pub reduction_stats: Option<ReductionStats>,
    /// Flight-recorder events retained when the checkpoint was written
    /// (empty for version-1 files). Restored into the resuming run's
    /// ring so the campaign's event history survives the crash.
    pub flight: Vec<FlightEvent>,
}

impl Checkpoint {
    /// Decode and fully validate a checkpoint from `bytes`, under the
    /// resuming checker's `rules` (the topology must match; rule dense
    /// indices are resolved against this rule set).
    ///
    /// # Errors
    /// [`CheckpointError::Corrupt`] for any malformed input — bad magic,
    /// failed checksum, truncation, undecodable states, inconsistent
    /// links; [`CheckpointError::Mismatch`] when the stored topology
    /// differs from `rules`.
    pub fn from_bytes(bytes: &[u8], rules: &Ruleset) -> Result<Self, CheckpointError> {
        let corrupt = |why: String| CheckpointError::Corrupt(why);
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored_sum = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if StateCodec::fingerprint(body) != stored_sum {
            return Err(corrupt("checksum failure (truncated or corrupted file)".into()));
        }
        let mut r = WireReader::new(body);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(corrupt("bad magic (not a checkpoint file)".into()));
        }
        let version = r.varint()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(corrupt(format!(
                "unsupported format version {version} (this build reads \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let fingerprint = u64::from_le_bytes(r.take(8)?.try_into().expect("8-byte take"));
        let flags = r.byte()?;
        if flags & !0x0f != 0 {
            return Err(corrupt(format!("unknown flag bits {flags:#x}")));
        }
        let devices = r.byte()? as usize;
        if devices != rules.topology().device_count() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for {devices} devices, checker runs {}",
                rules.topology().device_count()
            )));
        }
        let depth = usize_of(r.varint()?)?;
        let elapsed = Duration::from_nanos(r.varint()?);
        let transitions = usize_of(r.varint()?)?;
        let terminal_states = usize_of(r.varint()?)?;

        let n = r.len_prefix(2)?; // ≥ 1 payload byte + 1 length varint per state
        let payload = r.bytes()?.to_vec();
        let mut offsets = Vec::with_capacity(n);
        let mut at = 0usize;
        for i in 0..n {
            offsets.push(at);
            let len = usize_of(r.varint()?)?;
            if len == 0 {
                return Err(corrupt(format!("state {i} has zero length")));
            }
            at = at
                .checked_add(len)
                .ok_or_else(|| corrupt("state lengths overflow".into()))?;
        }
        if at != payload.len() {
            return Err(corrupt(format!(
                "state lengths sum to {at}, payload is {} bytes",
                payload.len()
            )));
        }
        let codec = StateCodec::new(rules.topology());
        let arena = StateArena::from_parts(codec, payload, offsets)?;
        let mut fps = Vec::with_capacity(n);
        for id in 0..n {
            let stored = u64::from_le_bytes(r.take(8)?.try_into().expect("8-byte take"));
            if stored != StateCodec::fingerprint(arena.bytes_of(id)) {
                return Err(corrupt(format!("state {id} fingerprint mismatch")));
            }
            fps.push(stored);
        }

        let rule_ids = rules.rule_ids();
        let rule_of = |idx: u64| -> Result<RuleId, CheckpointError> {
            rule_ids
                .get(usize_of(idx)?)
                .copied()
                .ok_or_else(|| corrupt(format!("rule index {idx} out of range")))
        };
        let mut parents = Vec::with_capacity(n);
        for id in 0..n {
            let tag = r.varint()?;
            if tag == 0 {
                parents.push(None);
            } else {
                let parent = usize_of(tag - 1)?;
                if parent >= id {
                    return Err(corrupt(format!("state {id} has parent {parent} (not prior)")));
                }
                parents.push(Some((parent, rule_of(r.varint()?)?)));
            }
        }
        let mut succ_counts = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.varint()?;
            succ_counts.push(
                u32::try_from(c).map_err(|_| corrupt(format!("successor count {c} overflows")))?,
            );
        }
        let frontier_len = r.len_prefix(1)?;
        let mut frontier = Vec::with_capacity(frontier_len);
        for _ in 0..frontier_len {
            let id = usize_of(r.varint()?)?;
            if id >= n {
                return Err(corrupt(format!("frontier id {id} out of range ({n} states)")));
            }
            frontier.push(id);
        }
        let firings_len = r.len_prefix(1)?;
        if firings_len != rule_ids.len() {
            return Err(corrupt(format!(
                "{firings_len} firing counters for a rule set of {}",
                rule_ids.len()
            )));
        }
        let mut firings = Vec::with_capacity(firings_len);
        for _ in 0..firings_len {
            firings.push(r.varint()?);
        }

        let reduction_stats = match r.byte()? {
            0 => None,
            // Tag 1 predates the host-drain counter; its checkpoints
            // resume with that counter reset to zero.
            tag @ (1 | 2) => Some(ReductionStats {
                orbit_canonicalized: r.varint()?,
                value_canonicalized: r.varint()?,
                ample_local: r.varint()?,
                ample_diamond: r.varint()?,
                ample_host_drain: if tag == 2 { r.varint()? } else { 0 },
                ..ReductionStats::default()
            }),
            other => return Err(corrupt(format!("bad reduction tag {other}"))),
        };

        let codec = arena.codec();
        let read_trace = |r: &mut WireReader<'_>| -> Result<Trace, CheckpointError> {
            let initial = codec.decode(r.bytes()?)?;
            let steps_len = r.len_prefix(2)?;
            let mut steps = Vec::with_capacity(steps_len);
            for _ in 0..steps_len {
                let rule = rule_of(r.varint()?)?;
                steps.push(Step { rule, state: codec.decode(r.bytes()?)? });
            }
            Ok(Trace { initial, steps })
        };
        let violations_len = r.len_prefix(3)?;
        let mut violations = Vec::with_capacity(violations_len);
        for _ in 0..violations_len {
            let property = string_of(r.bytes()?)?;
            let detail = string_of(r.bytes()?)?;
            violations.push(Violation { property, detail, trace: read_trace(&mut r)? });
        }
        let deadlocks_len = r.len_prefix(2)?;
        let mut deadlocks = Vec::with_capacity(deadlocks_len);
        for _ in 0..deadlocks_len {
            deadlocks.push(Deadlock { trace: read_trace(&mut r)? });
        }
        let quarantined_len = r.len_prefix(2)?;
        let mut quarantined = Vec::with_capacity(quarantined_len);
        for _ in 0..quarantined_len {
            let state = usize_of(r.varint()?)?;
            if state >= n {
                return Err(corrupt(format!("quarantined id {state} out of range")));
            }
            let message = string_of(r.bytes()?)?;
            quarantined.push(Quarantine {
                state,
                packed: arena.bytes_of(state).to_vec(),
                dump: arena.decode(state).to_string(),
                message,
            });
        }
        let sheds_len = r.len_prefix(4)?;
        let mut sheds = Vec::with_capacity(sheds_len);
        for _ in 0..sheds_len {
            let tag = r.byte()?;
            let reclaimed = usize_of(r.varint()?)?;
            let action = match tag {
                0 => DegradationAction::ShedBuffers { reclaimed },
                1 => DegradationAction::EmergencyCheckpoint,
                2 => DegradationAction::Truncate,
                other => return Err(corrupt(format!("bad degradation tag {other}"))),
            };
            sheds.push(DegradationStep {
                action,
                at_states: usize_of(r.varint()?)?,
                footprint: usize_of(r.varint()?)?,
            });
        }
        let mut flight = Vec::new();
        if version >= 2 {
            let flight_len = r.len_prefix(4)?;
            flight.reserve(flight_len);
            for _ in 0..flight_len {
                let seq = r.varint()?;
                let tag = r.byte()?;
                let kind = FlightKind::from_tag(tag)
                    .ok_or_else(|| corrupt(format!("bad flight-event tag {tag}")))?;
                let a = r.varint()?;
                let b = r.varint()?;
                let detail = string_of(r.bytes()?)?;
                flight.push(FlightEvent { seq, kind, a, b, detail });
            }
        }
        if !r.finished() {
            return Err(corrupt(format!("{} trailing bytes after checkpoint", r.remaining())));
        }

        Ok(Checkpoint {
            fingerprint,
            resumable: flags & 1 != 0,
            depth,
            elapsed,
            transitions,
            terminal_states,
            truncated: flags & 2 != 0,
            truncated_by_memory: flags & 4 != 0,
            truncated_by_time: flags & 8 != 0,
            arena,
            fps,
            parents,
            succ_counts,
            frontier,
            firings,
            violations,
            deadlocks,
            quarantined,
            sheds,
            reduction_stats,
            flight,
        })
    }

    /// Read and validate `dir`'s rolling checkpoint file.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the file cannot be read (e.g. no
    /// checkpoint was ever written), otherwise as [`Self::from_bytes`].
    pub fn read_dir(dir: &Path, rules: &Ruleset) -> Result<Self, CheckpointError> {
        Self::from_path(&checkpoint_path(dir), rules)
    }

    /// Read and validate a checkpoint file at `path`.
    ///
    /// # Errors
    /// As [`Self::read_dir`].
    pub fn from_path(path: &Path, rules: &Ruleset) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?, rules)
    }

    /// Re-serialize (the round-trip surface the proptests exercise).
    #[must_use]
    pub fn to_bytes(&self, rules: &Ruleset) -> Vec<u8> {
        CheckpointSource {
            fingerprint: self.fingerprint,
            resumable: self.resumable,
            depth: self.depth,
            elapsed: self.elapsed,
            transitions: self.transitions,
            terminal_states: self.terminal_states,
            truncated: self.truncated,
            truncated_by_memory: self.truncated_by_memory,
            truncated_by_time: self.truncated_by_time,
            arena: &self.arena,
            parents: &self.parents,
            succ_counts: &self.succ_counts,
            frontier: &self.frontier,
            firings: &self.firings,
            violations: &self.violations,
            deadlocks: &self.deadlocks,
            quarantined: &self.quarantined,
            sheds: &self.sheds,
            reduction_stats: self.reduction_stats,
            flight: &self.flight,
        }
        .encode(rules)
    }

    /// Partial-report view of the checkpointed statistics (the seed the
    /// resuming run continues from, and the whole report when
    /// reconstituting a non-resumable checkpoint).
    #[must_use]
    pub fn partial_report(&self, rules: &Ruleset) -> Report {
        let mut report = Report {
            states: self.arena.len(),
            transitions: self.transitions,
            depth: self.depth,
            truncated: self.truncated,
            truncated_by_memory: self.truncated_by_memory,
            truncated_by_time: self.truncated_by_time,
            violations: self.violations.clone(),
            deadlocks: self.deadlocks.clone(),
            terminal_states: self.terminal_states,
            elapsed: self.elapsed,
            memory_bytes: self.arena.approx_heap_bytes(),
            quarantined: self.quarantined.clone(),
            sheds: self.sheds.clone(),
            resumed_from: Some(self.arena.len()),
            ..Report::default()
        };
        report.rule_firings = rules
            .rule_ids()
            .iter()
            .zip(&self.firings)
            .filter(|(_, &c)| c > 0)
            .map(|(&id, &c)| (id, c))
            .collect();
        report
    }
}

fn usize_of(v: u64) -> Result<usize, CheckpointError> {
    usize::try_from(v).map_err(|_| CheckpointError::Corrupt(format!("value {v} overflows usize")))
}

fn string_of(bytes: &[u8]) -> Result<String, CheckpointError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|e| CheckpointError::Corrupt(format!("invalid UTF-8 string: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_core::ProtocolConfig;

    #[test]
    fn rejects_garbage_and_short_files() {
        let rules = Ruleset::new(ProtocolConfig::strict());
        for bytes in [&b""[..], &b"short"[..], &[0u8; 64][..]] {
            let err = Checkpoint::from_bytes(bytes, &rules).unwrap_err();
            assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        }
    }

    #[test]
    fn fingerprint_separates_configurations() {
        use cxl_core::{Relaxation, SystemState};
        let strict = Ruleset::new(ProtocolConfig::strict());
        let relaxed = Ruleset::new(ProtocolConfig::relaxed(Relaxation::SnoopPushesGo));
        let init = SystemState::initial(vec![], vec![]);
        let bytes = StateCodec::new(strict.topology()).encode(&init);
        let a = options_fingerprint(&strict, None, &bytes);
        let b = options_fingerprint(&relaxed, None, &bytes);
        let c = options_fingerprint(&strict, Some("symmetry(|G| = 2)"), &bytes);
        assert_ne!(a, b, "configuration must be covered");
        assert_ne!(a, c, "reduction setup must be covered");
    }
}
