//! Exhaustive verification sweep: for a grid of bounded device programs,
//! explore the entire reachable state space and check SWMR (paper
//! Definition 6.1), the full inductive invariant (paper §6), and
//! deadlock-freedom. This is the reproduction's substitute for the paper's
//! mechanised SWMR theorem (see DESIGN.md §4): for every bounded
//! configuration the verdict is exact.

use cxl_core::instr::{Instruction, Program};
use cxl_core::{Invariant, ProtocolConfig, Ruleset, SystemState};
use cxl_mc::{InvariantProperty, ModelChecker, SwmrProperty};

fn program_grid() -> Vec<Program> {
    use Instruction::*;
    [
        vec![],
        vec![Load],
        vec![Store(7)],
        vec![Evict],
        vec![Load, Store(8)],
        vec![Store(9), Evict],
        vec![Load, Evict],
        vec![Store(10), Store(11)],
        vec![Load, Load],
        vec![Evict, Evict],
        vec![Store(12), Load],
        vec![Load, Store(13), Evict],
    ]
    .into_iter()
    .map(Program::from)
    .collect()
}

fn sweep(cfg: ProtocolConfig) -> (usize, usize) {
    let inv = InvariantProperty::new(Invariant::for_config(&cfg));
    let mc = ModelChecker::new(Ruleset::new(cfg));
    let mut total_states = 0;
    let mut scenarios = 0;
    for p1 in program_grid() {
        for p2 in program_grid() {
            let init = SystemState::initial(p1.clone(), p2.clone());
            let report = mc.check(&init, &[&SwmrProperty, &inv]);
            assert!(
                report.clean(),
                "cfg {cfg:?}, programs {p1:?} / {p2:?}:\n{report}"
            );
            assert!(!report.truncated, "sweep must be exhaustive");
            total_states += report.states;
            scenarios += 1;
        }
    }
    (scenarios, total_states)
}

#[test]
fn strict_config_is_coherent_and_live_across_program_grid() {
    let (scenarios, states) = sweep(ProtocolConfig::strict());
    assert_eq!(scenarios, 144);
    assert!(states > 20_000, "expected a substantial state space, got {states}");
}

#[test]
fn full_config_is_coherent_and_live_across_program_grid() {
    // All optional behaviours on (CleanEvictNoData, clean pull, §4.4 drop
    // optimisation): still coherent.
    let (scenarios, states) = sweep(ProtocolConfig::full());
    assert_eq!(scenarios, 144);
    assert!(states > 25_000, "the full config explores more states, got {states}");
}

#[test]
fn fine_grained_invariant_also_holds_on_reachable_states() {
    // Spot-check the fine-grained (paper-scale) invariant on the biggest
    // scenario of the grid.
    let cfg = ProtocolConfig::strict();
    let inv = InvariantProperty::new(Invariant::fine_grained(&cfg));
    let mc = ModelChecker::new(Ruleset::new(cfg));
    let init = SystemState::initial(
        vec![Instruction::Load, Instruction::Store(13), Instruction::Evict],
        vec![Instruction::Store(9), Instruction::Evict],
    );
    let report = mc.check(&init, &[&inv]);
    assert!(report.clean(), "{report}");
}
