//! Integration tests pinning the regenerated paper tables: the exact rule
//! sequences, the state columns the paper prints, and the coherence
//! verdicts of each final row.

use cxl_repro::core::{swmr, DState, DeviceId, HState};
use cxl_repro::litmus::tables;

#[test]
fn table1_rule_sequence_matches_paper() {
    let (_, table) = tables::table1();
    assert_eq!(
        table.rule_names(),
        vec![
            "SharedEvict1",
            "HostCleanEvictDropNotLast1",
            "SiaGoWritePullDrop1",
            "InvalidEvict1",
        ],
        "paper Table 1: SharedEvict → Shared_CleanEvict_NotLastDrop → SIAGO_WritePullDrop, \
         then the no-op Evict"
    );
}

#[test]
fn table1_rows_show_the_paper_columns() {
    let (_, table) = tables::table1();
    let text = table.to_text();
    // Initial row: both devices (0, S), host (0, S), counter 0.
    assert!(text.contains("(initial state)"));
    assert!(text.lines().any(|l| l.contains("(0, SIA)") && l.contains("(CleanEvict, 0)")));
    assert!(text.lines().any(|l| l.contains("(GO_WritePullDrop, I, 0)")));
    // Final row: device 1 invalid, device 2 still shared.
    let last = table.rows.last().expect("rows");
    assert!(last.iter().any(|c| c == "(0, I)"));
    assert!(last.iter().any(|c| c == "(0, S)"));
}

#[test]
fn table2_rule_sequence_matches_paper() {
    let (_, table) = tables::table2();
    assert_eq!(
        table.rule_names(),
        vec!["ModifiedEvict1", "HostModifiedDirtyEvict1", "MiaGoWritePull1", "HostIdData1"],
        "paper Table 2: ModifiedEvict → HostModifiedDirtyEvict → MIAGO_WritePull → IDData"
    );
}

#[test]
fn table2_host_transitions_m_id_i_and_copies_value() {
    let (trace, table) = tables::table2();
    let host_states: Vec<HState> = std::iter::once(trace.initial.host.state)
        .chain(trace.steps.iter().map(|s| s.state.host.state))
        .collect();
    assert_eq!(host_states, vec![HState::M, HState::M, HState::ID, HState::ID, HState::I]);
    assert_eq!(trace.last_state().host.val, 1, "the dirty value is written back");
    // The write-back appears in the D2HData1 column.
    assert!(table.to_text().lines().any(|l| l.contains("(Data(1), 0)")));
}

#[test]
fn table3_rule_sequence_matches_paper_flow() {
    let (_, table) = tables::table3();
    let names = table.rule_names();
    // The paper's flow: both issues, RdShared served first, then the RdOwn
    // snoops, the buggy ISADSnpInv answers early, device 2 completes its
    // grant, the host (wrongly) grants M, device 1 completes.
    assert_eq!(names[0], "InvalidStore1");
    assert_eq!(names[1], "InvalidLoad2");
    assert_eq!(names[2], "HostInvalidRdShared2");
    assert_eq!(names[3], "HostSharedRdOwnOther1");
    assert_eq!(names[4], "IsadSnpInvBuggy2");
    assert!(names.contains(&"HostMaSnpRsp1".to_string()));
    assert_eq!(names.last().unwrap(), "ImaGo1");
}

#[test]
fn table3_final_row_is_the_swmr_violation() {
    let (trace, _) = tables::table3();
    let last = trace.last_state();
    assert!(!swmr(last));
    assert_eq!(last.dev(DeviceId::D1).cache.state, DState::M);
    assert_eq!(last.dev(DeviceId::D2).cache.state, DState::S);
    assert_eq!(last.dev(DeviceId::D1).cache.val, 42, "the store's value landed");
    // Coherence held on every earlier row (the violation "occurs here", at
    // the end — paper Figure 5).
    assert!(swmr(&trace.initial));
    for step in &trace.steps[..trace.steps.len() - 1] {
        assert!(swmr(&step.state), "premature violation at {}", step.rule.name());
    }
}

#[test]
fn figure5_msc_shows_the_paper_message_flow() {
    let (trace, _) = tables::table3();
    let msc = cxl_repro::litmus::msc::Msc::from_trace("fig5", &trace);
    let text = msc.to_text();
    // The chart must show the racing requests, the snoop, the buggy
    // response, and both grants (paper Figure 5's arrows).
    for needle in ["RdOwn", "RdShared", "SnpInv", "RspIHitI", "GO, S", "GO, M"] {
        assert!(text.contains(needle), "figure 5 chart missing {needle}:\n{text}");
    }
}
