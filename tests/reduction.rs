//! The state-space reduction subsystem's workspace-level guarantees.
//!
//! Three layers, mirroring the soundness story in `PERFORMANCE.md`:
//!
//! 1. **Canonicalization laws** — proptests that the symmetry engines'
//!    canonical forms are idempotent and invariant on their orbits:
//!    device canonicalization under every subgroup element, value
//!    renumbering under admissible value bijections, and the joint form
//!    under both at once — over randomised states at N ∈ 2..=4,
//!    including wild unreachable ones (canonical form is total over
//!    codec output).
//! 2. **Verdict equivalence** — the differential suite: reduced vs.
//!    unreduced exploration over N ∈ {2, 3} grids under strict, full,
//!    and relaxed configurations must agree on clean-vs-violating (per
//!    property) and deadlock presence for every combination of
//!    {symmetry, data-symmetry, por ∈ {off, on, wide}}, while the
//!    reduced run never stores more states. With device symmetry alone,
//!    the reduced run's Σ orbit sizes must equal the *measured*
//!    unreduced state count exactly — the strongest cross-check
//!    available without materialising the orbits.
//! 3. **Counterexample fidelity + acceptance bars** — the N = 3 Table 3
//!    violation repro under reduction de-canonicalizes into a concrete
//!    trace that replays and still violates SWMR; the N = 3 symmetric
//!    strict grid reduces below 40% under symmetry alone and below
//!    PR 4's 16.8% with wide POR stacked on top; a store-heavy
//!    asymmetric N = 3 grid (invisible to device symmetry) shrinks ≥ 2×
//!    under data symmetry alone; and a budget-truncated reduced run
//!    still reports its truncation honestly.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::litmus::{decanonicalize_trace, replay_trace};
use cxl_repro::mc::{
    CanonMode, CheckOptions, Exploration, ModelChecker, PorMode, Reducer, Reduction,
    ReductionConfig, SwmrProperty,
};
use cxl_repro::reduce::{apply_permutation, DataSymmetry, SymmetryGroup};
use cxl_repro::sketch::random_state_n;
use proptest::prelude::*;
use std::sync::Arc;

mod common;
use common::{all_engine_combos, rc, rcc};

fn explore_unreduced(cfg: ProtocolConfig, n: usize, init: &SystemState) -> Exploration {
    ModelChecker::new(Ruleset::with_devices(cfg, n)).explore(init, &[&SwmrProperty])
}

fn explore_reduced(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    rc: ReductionConfig,
) -> (Exploration, Arc<Reduction>) {
    let rules = Ruleset::with_devices(cfg, n);
    let red = Arc::new(Reduction::new(&rules, init, rc));
    let opts = CheckOptions {
        reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
        ..CheckOptions::default()
    };
    let exp = ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts)
        .explore(init, &[&SwmrProperty]);
    (exp, red)
}

/// The comparable verdict of an exploration: cleanliness, the violated
/// property names (the detail strings may name permuted device indices),
/// and deadlock presence.
fn verdict(exp: &Exploration) -> (bool, Vec<String>, bool) {
    (
        exp.report.clean(),
        exp.report.violations.iter().map(|v| v.property.clone()).collect(),
        !exp.report.deadlocks.is_empty(),
    )
}

// -------------------------------------------------------------------
// 1. Canonicalization laws.
// -------------------------------------------------------------------

/// An admissible value bijection for `s` under `ds`: fixes the pinned
/// set, shifts every other value — program operands included — into a
/// far-away band (injective, image disjoint from any small pinned
/// value).
fn shift_free_vals(ds: &DataSymmetry, s: &SystemState, shift: i64) -> SystemState {
    let pinned: Vec<i64> = ds.static_pinned().to_vec();
    DataSymmetry::apply_value_map(s, |v| if pinned.contains(&v) { v } else { v + shift })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn canonical_form_is_idempotent_and_permutation_invariant(
        n in 2usize..5,
        state_seed in 0u64..1_000_000,
        perm_pick in 0usize..24,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // All-idle initial state: every device identical, so the
        // detected subgroup is the full S_N — the richest orbit
        // structure, exercising every permutation.
        let init = SystemState::initial_n(n, Vec::new());
        let codec = cxl_repro::core::codec::StateCodec::new(init.topology());
        let group = SymmetryGroup::detect(&codec, &init);
        prop_assert_eq!(group.order(), (1..=n as u64).product::<u64>());

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, n);
        let mut scratch = Vec::new();

        let mut canon = codec.encode(&s);
        group.canonicalize(&codec, &mut canon, &mut scratch);

        // Idempotence: canonicalizing the canonical form is a no-op.
        let mut twice = canon.clone();
        prop_assert!(!group.canonicalize(&codec, &mut twice, &mut scratch));
        prop_assert_eq!(&twice, &canon);

        // Permutation invariance for a random subgroup element.
        let perms = group.permutations();
        let perm = &perms[perm_pick % perms.len()];
        let mut permuted = codec.encode(&apply_permutation(&s, perm));
        group.canonicalize(&codec, &mut permuted, &mut scratch);
        prop_assert_eq!(&permuted, &canon);

        // The representative stays inside the orbit: some subgroup
        // element maps s to it.
        let decoded = codec.decode(&canon).unwrap();
        prop_assert!(
            perms.iter().any(|p| apply_permutation(&s, p) == decoded),
            "canonical form left the orbit"
        );

        // Orbit size divides the group order and counts the distinct
        // permuted encodings.
        let orbit = group.orbit_size(&codec, &canon);
        prop_assert_eq!(group.order() % orbit, 0);
    }

    #[test]
    fn partial_symmetry_detection_respects_classes(
        state_seed in 0u64..1_000_000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Devices 1 and 2 identical, device 0 distinct: the subgroup is
        // exactly the swap of {1, 2}.
        let init = SystemState::initial_n(3, vec![vec![Instruction::Store(1)].into()]);
        let codec = cxl_repro::core::codec::StateCodec::new(init.topology());
        let group = SymmetryGroup::detect(&codec, &init);
        prop_assert_eq!(group.order(), 2);

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, 3);
        let mut scratch = Vec::new();
        let mut canon = codec.encode(&s);
        group.canonicalize(&codec, &mut canon, &mut scratch);

        // Invariant under the swap of the symmetric pair…
        let mut swapped = codec.encode(&apply_permutation(&s, &[0, 2, 1]));
        group.canonicalize(&codec, &mut swapped, &mut scratch);
        prop_assert_eq!(&swapped, &canon);
        // …and device 0's segment is never moved: slots outside a
        // multi-member class keep their own content.
        let decoded = codec.decode(&canon).unwrap();
        prop_assert_eq!(&decoded.devs[0], &s.devs[0]);
    }

    #[test]
    fn value_canonicalization_is_idempotent_and_bijection_invariant(
        n in 2usize..5,
        state_seed in 0u64..1_000_000,
        shift in 1i64..50_000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // A store-minting initial state arms the engine; random states
        // then hold arbitrary (mostly free) values.
        let init = SystemState::initial_n(n, vec![vec![Instruction::Store(11)].into()]);
        let codec = cxl_repro::core::codec::StateCodec::new(init.topology());
        let ds = DataSymmetry::detect(&codec, &init, &[]);
        prop_assert!(ds.potentially_active());

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, n);
        let mut out = Vec::new();
        ds.renumber(&codec.encode(&s), &mut out);

        // Idempotence.
        let mut twice = Vec::new();
        let (changed_again, _) = ds.renumber(&out, &mut twice);
        prop_assert!(!changed_again);
        prop_assert_eq!(&twice, &out);

        // Invariance under an admissible bijection (fixes pinned values,
        // shifts the free band far away).
        let shifted = shift_free_vals(&ds, &s, shift * 7);
        let mut out_shifted = Vec::new();
        ds.renumber(&codec.encode(&shifted), &mut out_shifted);
        prop_assert_eq!(&out_shifted, &out, "value-isomorphic states must renumber equally");
    }

    #[test]
    fn joint_canonicalization_commutes_over_both_group_actions(
        n in 2usize..4,
        state_seed in 0u64..1_000_000,
        perm_pick in 0usize..24,
        shift in 1i64..50_000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Symmetric store-minting workload: full S_N device group AND an
        // armed value engine — the joint canonical form must be constant
        // on orbits of the *product* action, i.e. device- and
        // value-canonicalization compose order-independently.
        let init =
            SystemState::initial_n(n, vec![vec![Instruction::Store(11)].into(); n]);
        let rules = Ruleset::with_devices(ProtocolConfig::strict(), n);
        let red = Reduction::new(&rules, &init, rc(true, true, PorMode::Off));
        prop_assert!(red.group().nontrivial());
        let ds = red.data_symmetry().expect("value engine armed");

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, n);
        let canon = red.canonical_encoding(&s);

        // Idempotence: the canonical form is its own canonical form.
        let decoded = red.codec().decode(&canon).unwrap();
        prop_assert_eq!(red.canonical_encoding(&decoded), canon.clone());

        // Invariance under device permutation, value bijection, and the
        // two composed in either order.
        let perms = red.group().permutations();
        let perm = &perms[perm_pick % perms.len()];
        let dev_then_val = shift_free_vals(ds, &apply_permutation(&s, perm), shift * 7);
        let val_then_dev = apply_permutation(&shift_free_vals(ds, &s, shift * 7), perm);
        prop_assert_eq!(red.canonical_encoding(&dev_then_val), canon.clone());
        prop_assert_eq!(red.canonical_encoding(&val_then_dev), canon);
    }

    #[test]
    fn refine_canon_matches_brute_canon_byte_for_byte(
        n in 2usize..5,
        state_seed in 0u64..1_000_000,
        value_blind in 0u8..2,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let value_blind = value_blind == 1;
        // Two ways to arm a full S_N joint group: byte-identical
        // store-minting programs (byte symmetry), and all-distinct
        // single-store programs (pure value-blind symmetry, trivial
        // byte group). Both are full orbit products, so the refine
        // labeller is exact — its representative must equal the brute
        // enumeration's byte for byte, on arbitrary codec output.
        let progs: Vec<_> = if value_blind {
            (0..n).map(|i| vec![Instruction::Store(i as i64 + 1)].into()).collect()
        } else {
            vec![vec![Instruction::Store(11), Instruction::Load].into(); n]
        };
        let init = SystemState::initial_n(n, progs);
        let rules = Ruleset::with_devices(ProtocolConfig::strict(), n);
        let refine =
            Reduction::new(&rules, &init, rcc(true, true, PorMode::Off, CanonMode::Refine));
        let brute =
            Reduction::new(&rules, &init, rcc(true, true, PorMode::Off, CanonMode::Brute));
        prop_assert_eq!(refine.canon_name(), "refine");
        prop_assert_eq!(brute.canon_name(), "brute");
        prop_assert_eq!(refine.joint_perms().len(), (1..=n).product::<usize>());

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, n);
        prop_assert_eq!(
            refine.canonical_encoding(&s),
            brute.canonical_encoding(&s),
            "refine and brute disagree on a representative at n = {}", n
        );
    }
}

// -------------------------------------------------------------------
// 2. Differential verdict equivalence.
// -------------------------------------------------------------------

/// Program grids per device count: symmetric, partially symmetric,
/// eviction-bearing (the POR engine's target), and store-heavy
/// value-symmetric workloads (the data-symmetry engine's target).
fn grids(n: usize) -> Vec<Vec<Vec<Instruction>>> {
    use Instruction::{Evict, Load, Store};
    let mut out = vec![
        vec![vec![Store(1), Load]; n],              // fully symmetric
        vec![vec![Evict, Load]; n],                 // symmetric with evicts
        {
            let mut g = vec![vec![Load]; n];        // one writer, N-1 readers
            g[0] = vec![Store(42)];
            g
        },
        {
            let mut g = vec![vec![Store(9)]; n];    // evicting reader tail
            g[n - 1] = vec![Evict, Load];
            g
        },
        {
            // Store-heavy and asymmetric: trivial device group, ≥ 3
            // distinct stored values — only data symmetry can touch it.
            let mut g = vec![vec![Load]; n];
            g[0] = vec![Store(1), Store(2)];
            g[1] = vec![Store(3), Load];
            g
        },
    ];
    // A fully asymmetric control: the device group must be trivial.
    out.push((0..n).map(|i| vec![Store(i as i64)]).collect());
    out
}

fn assert_reduction_equivalence(cfg: ProtocolConfig, n: usize, combos: &[ReductionConfig]) {
    for grid in grids(n) {
        let init =
            SystemState::initial_n(n, grid.iter().cloned().map(Into::into).collect());
        let unreduced = explore_unreduced(cfg, n, &init);
        for &rc in combos {
            let (reduced, red) = explore_reduced(cfg, n, &init, rc);
            assert_eq!(
                verdict(&unreduced),
                verdict(&reduced),
                "verdict diverged under {rc:?} / {cfg:?} on\n{init}"
            );
            assert!(
                reduced.report.states <= unreduced.report.states,
                "reduction grew the space under {rc:?} / {cfg:?} on\n{init}"
            );
            // With device symmetry alone, Σ orbit sizes must reproduce
            // the measured unreduced count exactly on clean runs (the
            // equivariant and determinised relations explore the same
            // set of states; data symmetry and POR both break the
            // one-orbit-per-stored-state accounting by design).
            if rc.symmetry
                && !rc.data_symmetry
                && rc.por == PorMode::Off
                && unreduced.report.clean()
            {
                let summary = reduced.report.reduction.as_ref().expect("summary present");
                assert_eq!(
                    summary.orbit_states,
                    unreduced.report.states as u64,
                    "orbit accounting drifted under {cfg:?} on\n{init}"
                );
            }
            // Conservative-POR-only runs preserve terminal states
            // exactly (the safe-local persistent sets reach every
            // terminal state of the full graph). The wide tier may
            // legitimately skip terminal states of suppressed
            // interleavings, so it is held to verdict equality only.
            if !rc.symmetry
                && !rc.data_symmetry
                && rc.por == PorMode::On
                && unreduced.report.clean()
            {
                assert_eq!(
                    unreduced.report.terminal_states, reduced.report.terminal_states,
                    "conservative POR lost a terminal state under {cfg:?} on\n{init}"
                );
            }
            // Any counterexample found under reduction de-canonicalizes
            // and replays (property invariance is checked in layer 3).
            for v in &reduced.report.violations {
                let rules = Ruleset::with_devices(cfg, n);
                let concrete =
                    decanonicalize_trace(&rules, &red, &v.trace).expect("trace de-permutes");
                replay_trace(&rules, &concrete).expect("de-canonicalized trace replays");
            }
        }
    }
}

#[test]
fn differential_verdicts_two_devices() {
    // The full engine matrix at N = 2 — every combination of
    // {symmetry, data-symmetry, por ∈ {off, on, wide}}.
    let combos = all_engine_combos();
    for cfg in [
        ProtocolConfig::strict(),
        ProtocolConfig::full(),
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking),
    ] {
        assert_reduction_equivalence(cfg, 2, &combos);
    }
}

#[test]
fn differential_verdicts_three_devices() {
    // A representative engine subset at N = 3 (the full matrix runs at
    // N = 2 above; CI's reduction smoke step drives the full matrix
    // through the explore CLI at N = 3 in release mode).
    let combos = [
        rc(true, false, PorMode::Off),
        rc(false, true, PorMode::Off),
        rc(false, false, PorMode::On),
        rc(true, true, PorMode::Wide),
        rc(true, false, PorMode::Wide),
    ];
    for cfg in [
        ProtocolConfig::strict(),
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
    ] {
        assert_reduction_equivalence(cfg, 3, &combos);
    }
}

// -------------------------------------------------------------------
// 3. Counterexample fidelity + acceptance bars.
// -------------------------------------------------------------------

#[test]
fn n3_symmetric_strict_grid_reduces_below_forty_percent() {
    // PR 4's acceptance criterion, still pinned: the symmetric [S5,L]^3
    // strict grid must shrink to at most 40% of its unreduced size
    // under device symmetry alone (measured: ~17%, approaching 1/3!).
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(5), Instruction::Load].into(),
            vec![Instruction::Store(5), Instruction::Load].into(),
            vec![Instruction::Store(5), Instruction::Load].into(),
        ],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 3, &init);
    let (reduced, _) = explore_reduced(cfg, 3, &init, rc(true, false, PorMode::Off));
    assert!(unreduced.report.clean() && reduced.report.clean());
    assert!(
        reduced.report.states * 100 <= unreduced.report.states * 40,
        "reduced {} vs unreduced {}: above the 40% bar",
        reduced.report.states,
        unreduced.report.states
    );
    let summary = reduced.report.reduction.as_ref().expect("summary present");
    assert_eq!(summary.group_order, 6);
    assert_eq!(summary.orbit_states, unreduced.report.states as u64);
}

#[test]
fn wide_por_beats_the_pr4_reduction_on_the_symmetric_grid() {
    // This PR's wide-POR acceptance criterion: symmetry + wide POR must
    // push the symmetric [S7,L]^3 strict grid below PR 4's 16.8%
    // symmetry-only figure, with both ample tiers contributing.
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(7), Instruction::Load].into(),
            vec![Instruction::Store(7), Instruction::Load].into(),
            vec![Instruction::Store(7), Instruction::Load].into(),
        ],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 3, &init);
    let (sym_only, _) = explore_reduced(cfg, 3, &init, rc(true, false, PorMode::Off));
    let (wide, _) = explore_reduced(cfg, 3, &init, rc(true, false, PorMode::Wide));
    assert!(unreduced.report.clean() && sym_only.report.clean() && wide.report.clean());
    assert!(
        wide.report.states < sym_only.report.states,
        "wide POR must cut below symmetry alone ({} vs {})",
        wide.report.states,
        sym_only.report.states
    );
    assert!(
        wide.report.states * 1000 < unreduced.report.states * 168,
        "reduced {} vs unreduced {}: above PR 4's 16.8% figure",
        wide.report.states,
        unreduced.report.states
    );
    let summary = wide.report.reduction.as_ref().expect("summary present");
    assert!(summary.ample_local > 0, "local hits must be taken as ample steps");
    assert!(summary.ample_diamond > 0, "completion diamonds must collapse");
}

#[test]
fn data_symmetry_halves_a_store_heavy_asymmetric_grid() {
    // This PR's data-symmetry acceptance criterion: a store-heavy N = 3
    // grid with 3 distinct stored values and byte-asymmetric programs —
    // [S1,L] / [S2,L] / [S3,L]: the byte-equality device group is
    // trivial, so PR 4's engine alone is inert — must shrink ≥ 2× under
    // the data-symmetry engine, verdict-identically. The engine sees
    // the three programs as value-isomorphic (symmetric value space),
    // detects all 3! value-blind device permutations, and renumbers
    // free values on top.
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(1), Instruction::Load].into(),
            vec![Instruction::Store(2), Instruction::Load].into(),
            vec![Instruction::Store(3), Instruction::Load].into(),
        ],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 3, &init);

    // PR 4's engine alone is inert on this grid.
    let (pr4, pr4_red) = explore_reduced(cfg, 3, &init, rc(true, false, PorMode::Off));
    assert_eq!(pr4_red.group().order(), 1, "byte-asymmetric programs: no byte symmetry");
    assert_eq!(pr4.report.states, unreduced.report.states, "PR 4's engine cannot reduce this");

    // Adding data symmetry reduces it ≥ 2×.
    let (reduced, red) = explore_reduced(cfg, 3, &init, rc(true, true, PorMode::Off));
    assert_eq!(verdict(&unreduced), verdict(&reduced));
    assert!(red.data_symmetry().is_some());
    assert_eq!(red.joint_perms().len(), 6, "all 3! value-blind arrangements qualify");
    assert!(
        reduced.report.states * 2 <= unreduced.report.states,
        "data symmetry must at least halve the store-heavy grid ({} vs {})",
        reduced.report.states,
        unreduced.report.states
    );
    let summary = reduced.report.reduction.as_ref().expect("summary present");
    assert!(summary.value_canonicalized > 0);
}

#[test]
fn n3_table3_violation_reproduces_and_replays_under_reduction() {
    // The paper's headline violation embedded in a 3-device topology
    // with a symmetric reader pair: reduction (all engines armed) must
    // still reach it, and the de-canonicalized counterexample must
    // replay and violate SWMR.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(42)].into(),
            vec![Instruction::Load].into(),
            vec![Instruction::Load].into(),
        ],
    );
    let (reduced, red) = {
        let rules = Ruleset::with_devices(cfg, 3);
        let red =
            Arc::new(Reduction::new(&rules, &init, rc(true, true, PorMode::Wide)));
        assert_eq!(red.group().order(), 2, "the two readers are interchangeable");
        assert!(red.data_symmetry().is_some(), "the stored 42 arms the value engine");
        let opts = CheckOptions {
            reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
            max_violations: 8,
            ..CheckOptions::default()
        };
        (
            ModelChecker::with_options(Ruleset::with_devices(cfg, 3), opts)
                .explore(&init, &[&SwmrProperty]),
            red,
        )
    };
    let swmr_violations: Vec<_> = reduced
        .report
        .violations
        .iter()
        .filter(|v| v.property == "SWMR")
        .collect();
    assert!(!swmr_violations.is_empty(), "SWMR violation reachable under reduction");
    let rules = Ruleset::with_devices(cfg, 3);
    for v in swmr_violations {
        let concrete = decanonicalize_trace(&rules, &red, &v.trace).expect("de-permutes");
        replay_trace(&rules, &concrete).expect("replays");
        assert!(
            !cxl_repro::core::swmr(concrete.last_state()),
            "concrete final state must violate SWMR"
        );
    }
}

#[test]
fn por_collapses_evict_interleavings_with_identical_verdicts() {
    // Eviction-heavy N=2 workload: POR's safe-local InvalidEvict steps
    // must measurably shrink the space while preserving everything the
    // report asserts about terminals.
    let init = SystemState::initial(
        vec![Instruction::Evict, Instruction::Evict],
        vec![Instruction::Store(3), Instruction::Load],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 2, &init);
    let (reduced, _) = explore_reduced(cfg, 2, &init, rc(false, false, PorMode::On));
    assert_eq!(verdict(&unreduced), verdict(&reduced));
    assert!(reduced.report.states < unreduced.report.states);
    assert_eq!(unreduced.report.terminal_states, reduced.report.terminal_states);
    let summary = reduced.report.reduction.as_ref().expect("summary present");
    assert!(summary.ample_steps() > 0, "the evicts must be taken as ample steps");
    assert!(summary.ample_local > 0);
    assert_eq!(summary.ample_diamond, 0, "the conservative tier collapses no diamonds");
}

#[test]
fn mem_budget_truncation_composes_with_reduction() {
    // A budget far below the packed footprint must stop a *reduced*
    // search exactly like an unreduced one: truncation flags raised, no
    // terminal/deadlock claims (the search did not finish, so a clean
    // verdict is never asserted), and the stored prefix intact.
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(1), Instruction::Store(2)].into(),
            vec![Instruction::Store(3), Instruction::Load].into(),
            vec![Instruction::Load].into(),
        ],
    );
    let cfg = ProtocolConfig::strict();
    let rules = Ruleset::with_devices(cfg, 3);
    let red = Arc::new(Reduction::new(&rules, &init, rc(true, true, PorMode::Wide)));
    let opts = CheckOptions {
        mem_budget: Some(2048),
        reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
        ..CheckOptions::default()
    };
    let exp = ModelChecker::with_options(Ruleset::with_devices(cfg, 3), opts)
        .explore(&init, &[&SwmrProperty]);
    assert!(exp.report.truncated, "budget must truncate the reduced search");
    assert!(exp.report.truncated_by_memory);
    // Sound partial verdict: no violations were found in the explored
    // prefix, but the report claims no terminal statistics — callers
    // (e.g. explore --expect-clean) treat a truncated report as
    // not-clean by contract.
    assert!(exp.report.violations.is_empty());
    assert_eq!(exp.report.terminal_states, 0);
    assert!(exp.report.deadlocks.is_empty());
    let (full, _) = explore_reduced(cfg, 3, &init, rc(true, true, PorMode::Wide));
    assert!(
        exp.report.states < full.report.states,
        "budgeted reduced run must store fewer states ({} vs {})",
        exp.report.states,
        full.report.states
    );
    // The stored prefix still decodes, starting from the caller's own
    // initial state (the reducers fix it).
    assert_eq!(exp.state(0), init);
}

#[test]
fn n5_reduced_vs_unreduced_verdict_differential() {
    // Five-device topology (the first size PR 4's brute canonicalizer
    // made painful): an evicting writer, two symmetric readers, and two
    // idle devices. Every canonicalizer choice must agree with the
    // unreduced search on the verdict, and never store more states.
    let init = SystemState::initial_n(
        5,
        vec![
            vec![Instruction::Store(1), Instruction::Evict].into(),
            vec![Instruction::Load].into(),
            vec![Instruction::Load].into(),
        ],
    );
    for cfg in [ProtocolConfig::strict(), ProtocolConfig::relaxed(Relaxation::SnoopPushesGo)] {
        let unreduced = explore_unreduced(cfg, 5, &init);
        for combo in [
            rc(true, false, PorMode::Off),
            rc(true, true, PorMode::Wide),
            rcc(true, true, PorMode::Off, CanonMode::Refine),
            rcc(true, true, PorMode::Off, CanonMode::Brute),
            rcc(true, true, PorMode::Wide, CanonMode::Refine),
        ] {
            let (reduced, _) = explore_reduced(cfg, 5, &init, combo);
            assert_eq!(
                verdict(&unreduced),
                verdict(&reduced),
                "verdict diverged under {combo:?} / {cfg:?}"
            );
            assert!(reduced.report.states <= unreduced.report.states);
        }
    }
}

#[test]
fn n6_fully_symmetric_grid_completes_under_refine_where_brute_cannot() {
    // The tentpole's unlock: six all-distinct single-store programs.
    // The byte group is trivial, but value-blindness detects the full
    // S_6 joint group (720 admissible arrangements) — exactly the
    // near-symmetric shape whose brute enumeration used to hang. The
    // refine labeller must pick itself under `auto` and finish the
    // grid outright; the pinned brute engine, held to a wall-clock
    // budget that release-mode refine beats by an order of magnitude,
    // must truncate.
    let cfg = ProtocolConfig::strict();
    let init = SystemState::initial_n(
        6,
        (0..6).map(|i| vec![Instruction::Store(i as i64 + 1)].into()).collect(),
    );
    let rules = Ruleset::with_devices(cfg, 6);

    let red = Arc::new(Reduction::new(&rules, &init, rc(true, true, PorMode::Wide)));
    assert_eq!(red.canon_name(), "refine", "auto must pick the refine labeller");
    assert_eq!(red.joint_perms().len(), 720);
    let opts = CheckOptions {
        reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
        ..CheckOptions::default()
    };
    let exp = ModelChecker::with_options(Ruleset::with_devices(cfg, 6), opts)
        .explore(&init, &[&SwmrProperty]);
    assert!(!exp.report.truncated, "refine must finish the N = 6 grid");
    assert!(exp.report.clean(), "the strict grid is coherent");
    assert!(exp.report.states > 5_000, "the quotient space is genuinely explored");
    let summary = exp.report.reduction.as_ref().expect("summary present");
    assert_eq!(summary.canon, "refine");
    assert!(summary.value_canonicalized > 0);

    // Brute force on the same grid: 720 renumbered encodings per
    // canonicalization. Give it a budget refine finishes well inside
    // and watch it truncate instead.
    let brute = Arc::new(Reduction::new(
        &rules,
        &init,
        rcc(true, true, PorMode::Wide, CanonMode::Brute),
    ));
    assert_eq!(brute.canon_name(), "brute");
    let opts = CheckOptions {
        reduction: Some(Arc::clone(&brute) as Arc<dyn Reducer>),
        time_budget: Some(std::time::Duration::from_millis(750)),
        ..CheckOptions::default()
    };
    let exp = ModelChecker::with_options(Ruleset::with_devices(cfg, 6), opts)
        .explore(&init, &[&SwmrProperty]);
    assert!(
        exp.report.truncated,
        "brute enumeration must blow the budget the refine labeller beats \
         ({} states reached)",
        exp.report.states
    );
}
