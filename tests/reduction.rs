//! The state-space reduction subsystem's workspace-level guarantees.
//!
//! Three layers, mirroring the soundness story in `PERFORMANCE.md`:
//!
//! 1. **Canonicalization laws** — proptests that the symmetry engine's
//!    canonical form is idempotent and permutation-invariant
//!    (`canon(σ(s)) == canon(s)` for every σ in the detected subgroup)
//!    over randomised states at N ∈ 2..=4, including wild unreachable
//!    ones — canonical form is total over codec output.
//! 2. **Verdict equivalence** — the differential suite: reduced
//!    (symmetry / por / both) vs. unreduced exploration over N ∈ {2, 3}
//!    grids under strict, full, and relaxed configurations must agree on
//!    clean-vs-violating (per property) and deadlock presence, while the
//!    reduced run never stores more states. On symmetric workloads the
//!    reduced run's Σ orbit sizes must equal the *measured* unreduced
//!    state count exactly — the strongest cross-check available without
//!    materialising the orbits.
//! 3. **Counterexample fidelity** — the N = 3 Table 3 violation repro
//!    under reduction de-canonicalizes into a concrete trace that
//!    replays through `cxl-litmus`'s replay module and still violates
//!    SWMR; and the acceptance bar: the N = 3 symmetric strict grid
//!    reduced to ≤ 40% of its unreduced state count.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::litmus::{decanonicalize_trace, replay_trace};
use cxl_repro::mc::{
    CheckOptions, Exploration, ModelChecker, Reducer, Reduction, ReductionConfig, SwmrProperty,
};
use cxl_repro::reduce::{apply_permutation, SymmetryGroup};
use cxl_repro::sketch::random_state_n;
use proptest::prelude::*;
use std::sync::Arc;

fn explore_unreduced(cfg: ProtocolConfig, n: usize, init: &SystemState) -> Exploration {
    ModelChecker::new(Ruleset::with_devices(cfg, n)).explore(init, &[&SwmrProperty])
}

fn explore_reduced(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    rc: ReductionConfig,
) -> (Exploration, Arc<Reduction>) {
    let rules = Ruleset::with_devices(cfg, n);
    let red = Arc::new(Reduction::new(&rules, init, rc));
    let opts = CheckOptions {
        reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
        ..CheckOptions::default()
    };
    let exp = ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts)
        .explore(init, &[&SwmrProperty]);
    (exp, red)
}

/// The comparable verdict of an exploration: cleanliness, the violated
/// property names (the detail strings may name permuted device indices),
/// and deadlock presence.
fn verdict(exp: &Exploration) -> (bool, Vec<String>, bool) {
    (
        exp.report.clean(),
        exp.report.violations.iter().map(|v| v.property.clone()).collect(),
        !exp.report.deadlocks.is_empty(),
    )
}

// -------------------------------------------------------------------
// 1. Canonicalization laws.
// -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn canonical_form_is_idempotent_and_permutation_invariant(
        n in 2usize..5,
        state_seed in 0u64..1_000_000,
        perm_pick in 0usize..24,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // All-idle initial state: every device identical, so the
        // detected subgroup is the full S_N — the richest orbit
        // structure, exercising every permutation.
        let init = SystemState::initial_n(n, Vec::new());
        let codec = cxl_repro::core::codec::StateCodec::new(init.topology());
        let group = SymmetryGroup::detect(&codec, &init);
        prop_assert_eq!(group.order(), (1..=n as u64).product::<u64>());

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, n);
        let mut scratch = Vec::new();

        let mut canon = codec.encode(&s);
        group.canonicalize(&codec, &mut canon, &mut scratch);

        // Idempotence: canonicalizing the canonical form is a no-op.
        let mut twice = canon.clone();
        prop_assert!(!group.canonicalize(&codec, &mut twice, &mut scratch));
        prop_assert_eq!(&twice, &canon);

        // Permutation invariance for a random subgroup element.
        let perms = group.permutations();
        let perm = &perms[perm_pick % perms.len()];
        let mut permuted = codec.encode(&apply_permutation(&s, perm));
        group.canonicalize(&codec, &mut permuted, &mut scratch);
        prop_assert_eq!(&permuted, &canon);

        // The representative stays inside the orbit: some subgroup
        // element maps s to it.
        let decoded = codec.decode(&canon).unwrap();
        prop_assert!(
            perms.iter().any(|p| apply_permutation(&s, p) == decoded),
            "canonical form left the orbit"
        );

        // Orbit size divides the group order and counts the distinct
        // permuted encodings.
        let orbit = group.orbit_size(&codec, &canon);
        prop_assert_eq!(group.order() % orbit, 0);
    }

    #[test]
    fn partial_symmetry_detection_respects_classes(
        state_seed in 0u64..1_000_000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Devices 1 and 2 identical, device 0 distinct: the subgroup is
        // exactly the swap of {1, 2}.
        let init = SystemState::initial_n(3, vec![vec![Instruction::Store(1)].into()]);
        let codec = cxl_repro::core::codec::StateCodec::new(init.topology());
        let group = SymmetryGroup::detect(&codec, &init);
        prop_assert_eq!(group.order(), 2);

        let mut rng = StdRng::seed_from_u64(state_seed);
        let s = random_state_n(&mut rng, 3);
        let mut scratch = Vec::new();
        let mut canon = codec.encode(&s);
        group.canonicalize(&codec, &mut canon, &mut scratch);

        // Invariant under the swap of the symmetric pair…
        let mut swapped = codec.encode(&apply_permutation(&s, &[0, 2, 1]));
        group.canonicalize(&codec, &mut swapped, &mut scratch);
        prop_assert_eq!(&swapped, &canon);
        // …and device 0's segment is never moved: slots outside a
        // multi-member class keep their own content.
        let decoded = codec.decode(&canon).unwrap();
        prop_assert_eq!(&decoded.devs[0], &s.devs[0]);
    }
}

// -------------------------------------------------------------------
// 2. Differential verdict equivalence.
// -------------------------------------------------------------------

/// Program grids per device count: symmetric, partially symmetric, and
/// eviction-bearing workloads (the POR engine's target).
fn grids(n: usize) -> Vec<Vec<Vec<Instruction>>> {
    use Instruction::{Evict, Load, Store};
    let mut out = vec![
        vec![vec![Store(1), Load]; n],              // fully symmetric
        vec![vec![Evict, Load]; n],                 // symmetric with evicts
        {
            let mut g = vec![vec![Load]; n];        // one writer, N-1 readers
            g[0] = vec![Store(42)];
            g
        },
        {
            let mut g = vec![vec![Store(9)]; n];    // evicting reader tail
            g[n - 1] = vec![Evict, Load];
            g
        },
    ];
    // A fully asymmetric control: the group must be trivial.
    out.push((0..n).map(|i| vec![Store(i as i64)]).collect());
    out
}

fn assert_reduction_equivalence(cfg: ProtocolConfig, n: usize) {
    for grid in grids(n) {
        let init =
            SystemState::initial_n(n, grid.iter().cloned().map(Into::into).collect());
        let unreduced = explore_unreduced(cfg, n, &init);
        for rc in [
            ReductionConfig { symmetry: true, por: false },
            ReductionConfig { symmetry: false, por: true },
            ReductionConfig { symmetry: true, por: true },
        ] {
            let (reduced, red) = explore_reduced(cfg, n, &init, rc);
            assert_eq!(
                verdict(&unreduced),
                verdict(&reduced),
                "verdict diverged under {rc:?} / {cfg:?} on\n{init}"
            );
            assert!(
                reduced.report.states <= unreduced.report.states,
                "reduction grew the space under {rc:?} / {cfg:?} on\n{init}"
            );
            // On clean runs with symmetry, Σ orbit sizes must reproduce
            // the measured unreduced count exactly (the equivariant and
            // determinised relations explore the same set of states).
            if rc.symmetry && !rc.por && unreduced.report.clean() {
                let summary = reduced.report.reduction.as_ref().expect("summary present");
                assert_eq!(
                    summary.orbit_states,
                    unreduced.report.states as u64,
                    "orbit accounting drifted under {cfg:?} on\n{init}"
                );
            }
            // POR-only runs preserve terminal states exactly (persistent
            // sets reach every terminal state of the full graph).
            if !rc.symmetry && rc.por && unreduced.report.clean() {
                assert_eq!(
                    unreduced.report.terminal_states, reduced.report.terminal_states,
                    "POR lost a terminal state under {cfg:?} on\n{init}"
                );
            }
            // Any counterexample found under reduction de-canonicalizes
            // and replays (property invariance is checked in layer 3).
            for v in &reduced.report.violations {
                let rules = Ruleset::with_devices(cfg, n);
                let concrete =
                    decanonicalize_trace(&rules, &red, &v.trace).expect("trace de-permutes");
                replay_trace(&rules, &concrete).expect("de-canonicalized trace replays");
            }
        }
    }
}

#[test]
fn differential_verdicts_two_devices() {
    for cfg in [
        ProtocolConfig::strict(),
        ProtocolConfig::full(),
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking),
    ] {
        assert_reduction_equivalence(cfg, 2);
    }
}

#[test]
fn differential_verdicts_three_devices() {
    for cfg in [
        ProtocolConfig::strict(),
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
    ] {
        assert_reduction_equivalence(cfg, 3);
    }
}

// -------------------------------------------------------------------
// 3. Counterexample fidelity + the acceptance bar.
// -------------------------------------------------------------------

#[test]
fn n3_symmetric_strict_grid_reduces_below_forty_percent() {
    // The PR's acceptance criterion: the symmetric [S5,L]^3 strict grid
    // must shrink to at most 40% of its unreduced size (measured: ~17%,
    // approaching 1/3!).
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(5), Instruction::Load].into(),
            vec![Instruction::Store(5), Instruction::Load].into(),
            vec![Instruction::Store(5), Instruction::Load].into(),
        ],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 3, &init);
    let (reduced, _) =
        explore_reduced(cfg, 3, &init, ReductionConfig { symmetry: true, por: false });
    assert!(unreduced.report.clean() && reduced.report.clean());
    assert!(
        reduced.report.states * 100 <= unreduced.report.states * 40,
        "reduced {} vs unreduced {}: above the 40% bar",
        reduced.report.states,
        unreduced.report.states
    );
    let summary = reduced.report.reduction.as_ref().expect("summary present");
    assert_eq!(summary.group_order, 6);
    assert_eq!(summary.orbit_states, unreduced.report.states as u64);
}

#[test]
fn n3_table3_violation_reproduces_and_replays_under_reduction() {
    // The paper's headline violation embedded in a 3-device topology
    // with a symmetric reader pair: reduction must still reach it, and
    // the de-canonicalized counterexample must replay and violate SWMR.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(42)].into(),
            vec![Instruction::Load].into(),
            vec![Instruction::Load].into(),
        ],
    );
    let (reduced, red) = {
        let rules = Ruleset::with_devices(cfg, 3);
        let red = Arc::new(Reduction::new(&rules, &init, ReductionConfig::default()));
        assert_eq!(red.group().order(), 2, "the two readers are interchangeable");
        let opts = CheckOptions {
            reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
            max_violations: 8,
            ..CheckOptions::default()
        };
        (
            ModelChecker::with_options(Ruleset::with_devices(cfg, 3), opts)
                .explore(&init, &[&SwmrProperty]),
            red,
        )
    };
    let swmr_violations: Vec<_> = reduced
        .report
        .violations
        .iter()
        .filter(|v| v.property == "SWMR")
        .collect();
    assert!(!swmr_violations.is_empty(), "SWMR violation reachable under reduction");
    let rules = Ruleset::with_devices(cfg, 3);
    for v in swmr_violations {
        let concrete = decanonicalize_trace(&rules, &red, &v.trace).expect("de-permutes");
        replay_trace(&rules, &concrete).expect("replays");
        assert!(
            !cxl_repro::core::swmr(concrete.last_state()),
            "concrete final state must violate SWMR"
        );
    }
}

#[test]
fn por_collapses_evict_interleavings_with_identical_verdicts() {
    // Eviction-heavy N=2 workload: POR's safe-local InvalidEvict steps
    // must measurably shrink the space while preserving everything the
    // report asserts about terminals.
    let init = SystemState::initial(
        vec![Instruction::Evict, Instruction::Evict],
        vec![Instruction::Store(3), Instruction::Load],
    );
    let cfg = ProtocolConfig::strict();
    let unreduced = explore_unreduced(cfg, 2, &init);
    let (reduced, _) =
        explore_reduced(cfg, 2, &init, ReductionConfig { symmetry: false, por: true });
    assert_eq!(verdict(&unreduced), verdict(&reduced));
    assert!(reduced.report.states < unreduced.report.states);
    assert_eq!(unreduced.report.terminal_states, reduced.report.terminal_states);
    let summary = reduced.report.reduction.as_ref().expect("summary present");
    assert!(summary.ample_steps > 0, "the evicts must be taken as ample steps");
}
