//! Counterexample-replay regression corpus.
//!
//! Every **violating grid** behind `tests/paper_tables.rs` — the Table 3
//! snoop-pushes-GO race (the source of Tables 3 / Figure 5) at N = 2 and
//! embedded at N = 3, plus the naive-transient-tracking variant — is
//! explored under *each* reduction-engine combination, and every
//! counterexample the reduced checker reports must:
//!
//! 1. de-canonicalize into a concrete trace (device **and** value
//!    coordinates de-permuted) that starts from the user's own initial
//!    state,
//! 2. replay **step for step** through the rule engine
//!    (`replay_trace`: each step's rule has a firing variant producing
//!    exactly the recorded state), and
//! 3. end in a state that violates the *same* property the canonical
//!    trace violated — re-checked with the property itself, not by
//!    name-matching alone.
//!
//! PR 4 replay-tested a single Table 3 repro under one engine
//! configuration; this corpus closes the gap across the whole engine
//! matrix.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::litmus::{decanonicalize_trace, replay_trace};
use cxl_repro::mc::{
    CheckOptions, ModelChecker, PorMode, Property, Reducer, Reduction, ReductionConfig,
    SwmrProperty,
};
use std::sync::Arc;

mod common;
use common::all_engine_combos;

/// The violating grids of the paper-tables suite: `(label, config,
/// device count, programs)`. Each must reach an SWMR violation.
fn violating_grids() -> Vec<(&'static str, ProtocolConfig, usize, Vec<Vec<Instruction>>)> {
    use Instruction::{Load, Store};
    vec![
        (
            "table3_n2_snoop_pushes_go",
            ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
            2,
            vec![vec![Store(42)], vec![Load]],
        ),
        (
            "table3_n3_snoop_pushes_go",
            ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
            3,
            vec![vec![Store(42)], vec![Load], vec![Load]],
        ),
        (
            "naive_tracking_n2",
            ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking),
            2,
            vec![vec![Store(42)], vec![Load]],
        ),
    ]
}

#[test]
fn every_violating_grid_replays_under_every_reduction_config() {
    for (label, cfg, n, grid) in violating_grids() {
        let init =
            SystemState::initial_n(n, grid.iter().cloned().map(Into::into).collect());
        for rc in all_engine_combos() {
            let rules = Ruleset::with_devices(cfg, n);
            let red = Arc::new(Reduction::new(&rules, &init, rc));
            let opts = CheckOptions {
                reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
                max_violations: 4,
                ..CheckOptions::default()
            };
            let report = ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts)
                .check(&init, &[&SwmrProperty]);
            assert!(
                !report.violations.is_empty(),
                "{label}: the violation must stay reachable under {rc:?}"
            );
            let rules = Ruleset::with_devices(cfg, n);
            for v in &report.violations {
                assert_eq!(v.property, "SWMR", "{label}: unexpected property under {rc:?}");
                let concrete = decanonicalize_trace(&rules, &red, &v.trace)
                    .unwrap_or_else(|e| panic!("{label} under {rc:?}: de-permute failed: {e}"));
                // The concrete trace starts from the *user's* initial
                // state — the checker stores the root uncanonicalized.
                assert_eq!(concrete.initial, init, "{label}: trace root drifted under {rc:?}");
                replay_trace(&rules, &concrete)
                    .unwrap_or_else(|e| panic!("{label} under {rc:?}: replay failed: {e}"));
                // The de-permuted final state violates the same property
                // the canonical one did — re-checked by evaluation.
                assert!(
                    !SwmrProperty.check(concrete.last_state()).holds(),
                    "{label} under {rc:?}: de-permuted final state no longer violates SWMR"
                );
                assert_eq!(
                    concrete.len(),
                    v.trace.len(),
                    "{label}: de-permutation must preserve the step count"
                );
            }
        }
    }
}

#[test]
fn canonical_and_concrete_traces_stay_orbit_aligned() {
    // Step-by-step fidelity on the N = 3 repro with every engine armed:
    // each concrete step must lie in the same joint (device × value)
    // orbit as its canonical counterpart.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(42)].into(),
            vec![Instruction::Load].into(),
            vec![Instruction::Load].into(),
        ],
    );
    let rules = Ruleset::with_devices(cfg, 3);
    let red = Arc::new(Reduction::new(
        &rules,
        &init,
        ReductionConfig { symmetry: true, data_symmetry: true, por: PorMode::Wide, canon: cxl_repro::mc::CanonMode::Auto },
    ));
    let opts = CheckOptions {
        reduction: Some(Arc::clone(&red) as Arc<dyn Reducer>),
        ..CheckOptions::default()
    };
    let report = ModelChecker::with_options(Ruleset::with_devices(cfg, 3), opts)
        .check(&init, &[&SwmrProperty]);
    let canonical = &report.violations[0].trace;
    let concrete =
        decanonicalize_trace(&rules, &red, canonical).expect("canonical trace de-permutes");
    for (c, k) in concrete.steps.iter().zip(&canonical.steps) {
        assert_eq!(
            red.canonical_encoding(&c.state),
            red.canonical_encoding(&k.state),
            "orbit drift during de-canonicalization"
        );
        assert_eq!(c.rule.shape, k.rule.shape, "de-permutation may only remap devices");
    }
}
