//! Checkpoint wire-format laws, property-tested.
//!
//! 1. **Round-trip** — a checkpoint written by a real (randomised)
//!    exploration decodes back to itself: every field survives
//!    `to_bytes` → `from_bytes`, and re-encoding is byte-identical to
//!    what the checker wrote (the format is canonical).
//! 2. **Robust rejection** — every truncation of a valid file and every
//!    single-byte corruption is rejected with a clean
//!    [`CheckpointError`]: never a panic, never a silently-wrong resume
//!    (the trailing whole-file checksum plus per-state fingerprint
//!    cross-checks see to that).

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Ruleset, SystemState};
use cxl_repro::mc::{
    checkpoint_path, CheckOptions, Checkpoint, CheckpointPolicy, ModelChecker, SwmrProperty,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxl-ckpt-rt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Load),
        (-1i64..50).prop_map(Instruction::Store),
        Just(Instruction::Evict),
    ]
}

fn program() -> impl Strategy<Value = Vec<Instruction>> {
    proptest::collection::vec(instr(), 0..3)
}

/// Run a small checkpointed exploration and return the written file's
/// bytes alongside the ruleset that produced them. `max_depth` varies
/// whether the final checkpoint is a truncated-resumable one or a
/// completed run's.
fn checkpoint_bytes(
    name: &str,
    progs: Vec<Vec<Instruction>>,
    max_depth: Option<usize>,
) -> (Vec<u8>, Ruleset) {
    let n = progs.len().max(2);
    let init = SystemState::initial_n(n, progs.into_iter().map(Into::into).collect());
    let dir = scratch(name);
    let mut policy = CheckpointPolicy::new(&dir);
    policy.every = Duration::ZERO;
    let opts = CheckOptions { max_depth, checkpoint: Some(policy), ..CheckOptions::default() };
    let rules = Ruleset::with_devices(ProtocolConfig::strict(), n);
    let _ = ModelChecker::with_options(Ruleset::with_devices(ProtocolConfig::strict(), n), opts)
        .explore(&init, &[&SwmrProperty]);
    let bytes = std::fs::read(checkpoint_path(&dir)).expect("checkpoint written");
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn checkpoint_round_trips_exactly(
        p1 in program(),
        p2 in program(),
        max_depth in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
    ) {
        let (bytes, rules) = checkpoint_bytes("roundtrip", vec![p1, p2], max_depth);
        let cp = Checkpoint::from_bytes(&bytes, &rules).expect("checker output parses");

        // Canonical encoding: re-serializing reproduces the file.
        let reencoded = cp.to_bytes(&rules);
        prop_assert_eq!(&reencoded, &bytes, "encode is canonical");

        // And the re-decoded value matches field by field.
        let back = Checkpoint::from_bytes(&reencoded, &rules).expect("re-parses");
        prop_assert_eq!(cp.fingerprint, back.fingerprint);
        prop_assert_eq!(cp.resumable, back.resumable);
        prop_assert_eq!(cp.depth, back.depth);
        prop_assert_eq!(cp.elapsed, back.elapsed);
        prop_assert_eq!(cp.transitions, back.transitions);
        prop_assert_eq!(cp.terminal_states, back.terminal_states);
        prop_assert_eq!(cp.truncated, back.truncated);
        prop_assert_eq!(cp.truncated_by_memory, back.truncated_by_memory);
        prop_assert_eq!(cp.truncated_by_time, back.truncated_by_time);
        prop_assert_eq!(&cp.arena, &back.arena);
        prop_assert_eq!(&cp.fps, &back.fps);
        prop_assert_eq!(&cp.parents, &back.parents);
        prop_assert_eq!(&cp.succ_counts, &back.succ_counts);
        prop_assert_eq!(&cp.frontier, &back.frontier);
        prop_assert_eq!(&cp.firings, &back.firings);
        prop_assert_eq!(cp.violations.len(), back.violations.len());
        prop_assert_eq!(cp.deadlocks.len(), back.deadlocks.len());
        prop_assert_eq!(cp.quarantined.len(), back.quarantined.len());
        prop_assert_eq!(cp.sheds.len(), back.sheds.len());
        prop_assert_eq!(cp.reduction_stats, back.reduction_stats);

        // Structural sanity the resume path relies on.
        prop_assert_eq!(cp.fps.len(), cp.arena.len());
        prop_assert_eq!(cp.parents.len(), cp.arena.len());
        prop_assert_eq!(cp.succ_counts.len(), cp.arena.len());
        prop_assert_eq!(cp.firings.len(), rules.rule_ids().len());
        for &f in &cp.frontier {
            prop_assert!(f < cp.arena.len());
        }
    }

    #[test]
    fn corrupted_bytes_are_rejected_never_misread(
        p1 in program(),
        p2 in program(),
        seed in any::<u64>(),
    ) {
        let (bytes, rules) = checkpoint_bytes("corrupt", vec![p1, p2], Some(2));
        prop_assert!(!bytes.is_empty());

        // A handful of deterministic single-byte corruptions derived
        // from the seed: flip a bit, and also try overwriting with a
        // hostile value. Any change anywhere must fail the trailing
        // checksum (or a later structural check) — never parse to a
        // different checkpoint, never panic.
        for k in 0..8u64 {
            let pos = ((seed.wrapping_mul(2654435761).wrapping_add(k * 7919)) as usize)
                % bytes.len();
            let bit = ((seed >> 8).wrapping_add(k) % 8) as u8;
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            prop_assert!(
                Checkpoint::from_bytes(&mutated, &rules).is_err(),
                "bit flip at byte {} must be rejected", pos
            );
            let mut stomped = bytes.clone();
            stomped[pos] = 0xFF;
            if stomped != bytes {
                prop_assert!(
                    Checkpoint::from_bytes(&stomped, &rules).is_err(),
                    "stomped byte at {} must be rejected", pos
                );
            }
        }
    }
}

#[test]
fn every_truncation_of_a_valid_checkpoint_is_rejected() {
    // Exhaustive over prefixes: a torn write (the reason the writer
    // goes through write-then-rename) can leave any prefix behind, and
    // each one must fail cleanly.
    let (bytes, rules) = checkpoint_bytes(
        "truncation",
        vec![vec![Instruction::Store(1), Instruction::Load], vec![Instruction::Load]],
        None,
    );
    for len in 0..bytes.len() {
        assert!(
            Checkpoint::from_bytes(&bytes[..len], &rules).is_err(),
            "prefix of {len}/{} bytes must be rejected",
            bytes.len()
        );
    }
    // Trailing garbage is rejected too (the reader demands exhaustion).
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(Checkpoint::from_bytes(&padded, &rules).is_err(), "trailing byte must be rejected");
    // And the untouched original still parses.
    assert!(Checkpoint::from_bytes(&bytes, &rules).is_ok());
}
