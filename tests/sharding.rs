//! Sharded-driver determinism: the shard-owned, fingerprint-routed
//! exploration must be **bit-identical** to the sequential driver.
//!
//! The contract under test (ISSUE 7 acceptance bar): for every
//! reduction-engine combination, at N ∈ {2, 3} and shard counts
//! {1, 2, 4}, the sharded driver produces the same verdict, state and
//! transition counts, per-rule firing counts, successor counts, packed
//! arena bytes, and counterexample traces as a plain sequential run —
//! whether the shard jobs run inline (threads = 1) or across the worker
//! pool (threads = 2), and whether the level merges on the lock-free
//! fast path or the truncation-exact slow path. On top:
//!
//! - a sharded run interrupted at a BFS level boundary and resumed by a
//!   *fresh* checker (under the same or a *different* shard count)
//!   reconstitutes exactly — checkpoints are shard-count-free;
//! - the sequential driver's decoded-frontier ring is invisible in the
//!   results at any capacity, including zero.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::mc::{
    CheckOptions, CheckpointPolicy, Exploration, ModelChecker, Reducer, Reduction,
    ReductionConfig, SwmrProperty, Trace,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::all_engine_combos;

/// A fresh scratch directory under the system temp root, unique per
/// test and per process.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxl-sharding-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Checkpoint at every level boundary — deterministic, never races the
/// wall clock.
fn eager_policy(dir: &std::path::Path) -> CheckpointPolicy {
    let mut policy = CheckpointPolicy::new(dir);
    policy.every = Duration::ZERO;
    policy
}

/// Mixed store/load grids small enough for the full matrix.
fn grid(n: usize) -> SystemState {
    match n {
        2 => SystemState::initial(programs::stores(1, 2), programs::loads(2)),
        3 => SystemState::initial_n(
            3,
            vec![
                vec![Instruction::Store(1), Instruction::Load].into(),
                vec![Instruction::Store(2)].into(),
                programs::loads(1),
            ],
        ),
        _ => unreachable!("matrix covers N in {{2, 3}}"),
    }
}

/// Build the reducer for a combo, mirroring how `explore` wires one up.
fn reducer_for(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    combo: Option<ReductionConfig>,
) -> Option<Arc<dyn Reducer>> {
    let combo = combo?;
    let red = Reduction::new(&Ruleset::with_devices(cfg, n), init, combo);
    red.is_active().then(|| Arc::new(red) as Arc<dyn Reducer>)
}

fn explore_with(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    opts: CheckOptions,
) -> Exploration {
    ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts).explore(init, &[&SwmrProperty])
}

fn assert_traces_eq(a: &Trace, b: &Trace, ctx: &str) {
    assert_eq!(a.initial, b.initial, "{ctx}: trace initial state");
    assert_eq!(a.steps.len(), b.steps.len(), "{ctx}: trace length");
    for (i, (sa, sb)) in a.steps.iter().zip(&b.steps).enumerate() {
        assert_eq!(sa.rule, sb.rule, "{ctx}: trace step {i} rule");
        assert_eq!(sa.state, sb.state, "{ctx}: trace step {i} state");
    }
}

/// Everything the determinism contract covers.
fn assert_identical(seq: &Exploration, sharded: &Exploration, ctx: &str) {
    let (s, h) = (&seq.report, &sharded.report);
    assert_eq!(s.states, h.states, "{ctx}: state count");
    assert_eq!(s.transitions, h.transitions, "{ctx}: transition count");
    assert_eq!(s.depth, h.depth, "{ctx}: depth");
    assert_eq!(s.terminal_states, h.terminal_states, "{ctx}: terminals");
    assert_eq!(s.truncated, h.truncated, "{ctx}: truncated flag");
    assert_eq!(s.rule_firings, h.rule_firings, "{ctx}: firing counts");
    assert_eq!(s.violations.len(), h.violations.len(), "{ctx}: violation count");
    for (i, (vs, vh)) in s.violations.iter().zip(&h.violations).enumerate() {
        assert_eq!(vs.property, vh.property, "{ctx}: violation {i} property");
        assert_eq!(vs.detail, vh.detail, "{ctx}: violation {i} detail");
        assert_traces_eq(&vs.trace, &vh.trace, &format!("{ctx}: violation {i}"));
    }
    assert_eq!(s.deadlocks.len(), h.deadlocks.len(), "{ctx}: deadlock count");
    for (i, (ds, dh)) in s.deadlocks.iter().zip(&h.deadlocks).enumerate() {
        assert_traces_eq(&ds.trace, &dh.trace, &format!("{ctx}: deadlock {i}"));
    }
    assert_eq!(seq.arena, sharded.arena, "{ctx}: packed arena bytes");
    assert_eq!(seq.successor_counts, sharded.successor_counts, "{ctx}: successor counts");
}

#[test]
fn sharded_matches_sequential_across_reduction_matrix() {
    let cfg = ProtocolConfig::strict();
    let combos: Vec<Option<ReductionConfig>> =
        std::iter::once(None).chain(all_engine_combos().into_iter().map(Some)).collect();
    for n in [2usize, 3] {
        let init = grid(n);
        for (i, combo) in combos.iter().enumerate() {
            let seq = explore_with(
                cfg,
                n,
                &init,
                CheckOptions {
                    reduction: reducer_for(cfg, n, &init, *combo),
                    ..CheckOptions::default()
                },
            );
            assert_eq!(seq.report.shards, 1, "sequential driver reports one shard");
            for shards in [1usize, 2, 4] {
                let ctx = format!("N={n} combo#{i} {combo:?} shards={shards}");
                let sharded = explore_with(
                    cfg,
                    n,
                    &init,
                    CheckOptions {
                        shards: Some(shards),
                        reduction: reducer_for(cfg, n, &init, *combo),
                        ..CheckOptions::default()
                    },
                );
                assert_identical(&seq, &sharded, &ctx);
                if shards > 1 {
                    assert_eq!(sharded.report.shards, shards, "{ctx}: shard count reported");
                    assert!(
                        sharded.report.routed_messages > 0,
                        "{ctx}: routing must be exercised"
                    );
                }
            }
        }
    }
}

#[test]
fn pooled_sharded_exploration_matches_sequential() {
    // threads = 2 exercises the real worker-pool path: pool expansion,
    // shard state moving through the job queue, pooled property checks.
    let cfg = ProtocolConfig::strict();
    for n in [2usize, 3] {
        let init = grid(n);
        let seq = explore_with(cfg, n, &init, CheckOptions::default());
        for shards in [2usize, 4] {
            let ctx = format!("N={n} threads=2 shards={shards}");
            let pooled = explore_with(
                cfg,
                n,
                &init,
                CheckOptions {
                    threads: 2,
                    shards: Some(shards),
                    ..CheckOptions::default()
                },
            );
            assert_identical(&seq, &pooled, &ctx);
        }
    }
}

#[test]
fn sharded_violation_traces_match_sequential() {
    // The paper's Table 3 repro: relaxing Snoop-pushes-GO violates SWMR.
    // The sharded driver must find the same counterexample, byte for
    // byte, on both the inline and the pooled path.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial(programs::store(42), programs::load());
    let seq = explore_with(cfg, 2, &init, CheckOptions::default());
    assert!(!seq.report.violations.is_empty(), "Table 3 repro must violate SWMR");
    for (threads, shards) in [(1usize, 2usize), (1, 4), (2, 2)] {
        let ctx = format!("threads={threads} shards={shards}");
        let sharded = explore_with(
            cfg,
            2,
            &init,
            CheckOptions { threads, shards: Some(shards), ..CheckOptions::default() },
        );
        assert_identical(&seq, &sharded, &ctx);
    }
}

#[test]
fn sharded_truncation_is_bit_identical() {
    // A tight max_states forces the slow (serial-merge) path, which must
    // mirror the sequential driver's truncation semantics exactly —
    // including which states make it into the arena and the transient
    // over-cap property checks.
    let cfg = ProtocolConfig::strict();
    let init = SystemState::initial(programs::stores(0, 3), programs::loads(3));
    for cap in [10usize, 50, 200] {
        let seq = explore_with(
            cfg,
            2,
            &init,
            CheckOptions { max_states: cap, ..CheckOptions::default() },
        );
        assert!(seq.report.truncated, "cap={cap}: must truncate");
        for shards in [2usize, 4] {
            let ctx = format!("cap={cap} shards={shards}");
            let sharded = explore_with(
                cfg,
                2,
                &init,
                CheckOptions {
                    max_states: cap,
                    shards: Some(shards),
                    ..CheckOptions::default()
                },
            );
            assert_identical(&seq, &sharded, &ctx);
        }
    }
}

#[test]
fn sharded_interrupt_then_resume_reconstitutes_exactly() {
    // Interrupt a sharded run at a mid-search level boundary, drop every
    // byte of in-memory state, and resume with a fresh checker — under
    // the same shard count, a different one, and the plain sequential
    // driver. All must land on the uninterrupted result: the checkpoint
    // wire format is the merged (shard-count-free) layout.
    let cfg = ProtocolConfig::strict();
    let init = grid(3);
    let baseline = explore_with(cfg, 3, &init, CheckOptions::default());
    assert!(!baseline.report.truncated, "baseline must complete");
    let cut = baseline.report.depth / 2;
    assert!(cut >= 1, "grid too shallow to interrupt");

    for (write_shards, resume_shards) in
        [(Some(2usize), Some(2usize)), (Some(2), Some(4)), (Some(4), None), (None, Some(2))]
    {
        let ctx = format!("write_shards={write_shards:?} resume_shards={resume_shards:?}");
        let dir = scratch(&format!(
            "resume-{}-{}",
            write_shards.unwrap_or(0),
            resume_shards.unwrap_or(0)
        ));
        let interrupted = explore_with(
            cfg,
            3,
            &init,
            CheckOptions {
                max_depth: Some(cut),
                shards: write_shards,
                checkpoint: Some(eager_policy(&dir)),
                ..CheckOptions::default()
            },
        );
        assert!(interrupted.report.truncated, "{ctx}: interruption must truncate");
        assert!(interrupted.report.states < baseline.report.states, "{ctx}: partial");
        drop(interrupted);

        let resumed = ModelChecker::with_options(
            Ruleset::with_devices(cfg, 3),
            CheckOptions {
                shards: resume_shards,
                checkpoint: Some(eager_policy(&dir)),
                ..CheckOptions::default()
            },
        )
        .explore_resumed(&[&SwmrProperty])
        .expect("resume from sharded checkpoint");
        assert!(resumed.report.resumed_from.is_some(), "{ctx}: must mark resumption");
        assert_identical(&baseline, &resumed, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn frontier_ring_is_invisible_in_results() {
    // The decoded-frontier ring is a pure decode-skipping cache: any
    // capacity — zero, smaller than a level, larger than every level —
    // must leave the exploration bit-identical.
    let cfg = ProtocolConfig::strict();
    for n in [2usize, 3] {
        let init = grid(n);
        let no_ring =
            explore_with(cfg, n, &init, CheckOptions { frontier_ring: 0, ..CheckOptions::default() });
        for ring in [1usize, 3, 64, 1 << 20] {
            let ctx = format!("N={n} ring={ring}");
            let ringed = explore_with(
                cfg,
                n,
                &init,
                CheckOptions { frontier_ring: ring, ..CheckOptions::default() },
            );
            assert_identical(&no_ring, &ringed, &ctx);
        }
    }
    // And it composes with a violating run's early stop.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial(programs::store(42), programs::load());
    let no_ring =
        explore_with(cfg, 2, &init, CheckOptions { frontier_ring: 0, ..CheckOptions::default() });
    let ringed =
        explore_with(cfg, 2, &init, CheckOptions { frontier_ring: 2, ..CheckOptions::default() });
    assert_identical(&no_ring, &ringed, "violating run, ring=2");
}

#[test]
fn shard_imbalance_is_reported_and_bounded() {
    // Fingerprint routing approximates a uniform split; on a real grid
    // the most loaded shard must sit within a sane factor of the mean,
    // and the report must surface the number.
    let cfg = ProtocolConfig::strict();
    let init = grid(2);
    let sharded = explore_with(
        cfg,
        2,
        &init,
        CheckOptions { shards: Some(4), ..CheckOptions::default() },
    );
    assert_eq!(sharded.report.shards, 4);
    assert!(sharded.report.routed_messages >= sharded.report.transitions as u64);
    assert!(
        sharded.report.shard_imbalance_pct >= 0.0
            && sharded.report.shard_imbalance_pct < 100.0,
        "imbalance {:.1}% out of range",
        sharded.report.shard_imbalance_pct
    );
}
