//! Property-based tests (proptest) on the core model's invariants:
//! random programs, random walks, and structural properties of rule
//! application.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{swmr, Invariant, ProtocolConfig, RuleId, Ruleset, SystemState};
use proptest::prelude::*;

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Load),
        (-5i64..100).prop_map(Instruction::Store),
        Just(Instruction::Evict),
    ]
}

fn arb_program(max_len: usize) -> impl Strategy<Value = Vec<Instruction>> {
    proptest::collection::vec(arb_instruction(), 0..=max_len)
}

/// Walk one pseudo-random path from `init` to quiescence, checking `check`
/// on every state; returns the number of steps.
fn random_walk(
    rules: &Ruleset,
    init: &SystemState,
    choice_seed: u64,
    mut check: impl FnMut(&SystemState),
) -> usize {
    let mut s = init.clone();
    let mut steps = 0usize;
    let mut seed = choice_seed;
    check(&s);
    loop {
        let succs = rules.successors(&s);
        if succs.is_empty() {
            break;
        }
        // Simple deterministic LCG so failures replay exactly.
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let pick = (seed >> 33) as usize % succs.len();
        s = succs.into_iter().nth(pick).expect("index in range").1;
        steps += 1;
        check(&s);
        assert!(steps < 10_000, "walk did not terminate");
    }
    assert!(s.is_quiescent(), "terminal state must be quiescent:\n{s}");
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random path through the strict model maintains SWMR and the
    /// full invariant and ends quiescent (a sampled version of the
    /// Theorem 6.2 analogue).
    #[test]
    fn random_paths_stay_coherent(
        p1 in arb_program(4),
        p2 in arb_program(4),
        seed in any::<u64>(),
    ) {
        let cfg = ProtocolConfig::strict();
        let rules = Ruleset::new(cfg);
        let inv = Invariant::for_config(&cfg);
        let init = SystemState::initial(p1, p2);
        random_walk(&rules, &init, seed, |s| {
            assert!(swmr(s), "SWMR violated on:\n{s}");
            if let Some(c) = inv.first_violation(s) {
                panic!("invariant conjunct {c} violated on:\n{s}");
            }
        });
    }

    /// The same, under the full configuration (all optional behaviours).
    #[test]
    fn random_paths_stay_coherent_full_config(
        p1 in arb_program(3),
        p2 in arb_program(3),
        seed in any::<u64>(),
    ) {
        let cfg = ProtocolConfig::full();
        let rules = Ruleset::new(cfg);
        let inv = Invariant::for_config(&cfg);
        let init = SystemState::initial(p1, p2);
        random_walk(&rules, &init, seed, |s| {
            assert!(swmr(s), "SWMR violated on:\n{s}");
            assert!(inv.holds(s), "invariant violated on:\n{s}");
        });
    }

    /// Structural facts about a single rule application: the counter never
    /// decreases, at most one instruction retires, and message counts
    /// change by a bounded amount.
    #[test]
    fn rule_application_is_structurally_bounded(
        p1 in arb_program(3),
        p2 in arb_program(3),
        seed in any::<u64>(),
    ) {
        let rules = Ruleset::new(ProtocolConfig::full());
        let init = SystemState::initial(p1, p2);
        let mut prev = init.clone();
        random_walk(&rules, &init, seed, |s| {
            assert!(s.counter >= prev.counter);
            assert!(s.counter <= prev.counter + 1);
            let before = prev.instructions_remaining();
            let after = s.instructions_remaining();
            assert!(after == before || after + 1 == before);
            let dm = s.messages_in_flight() as i64 - prev.messages_in_flight() as i64;
            assert!((-2..=2).contains(&dm));
            prev = s.clone();
        });
    }

    /// Rule firing is a pure function of the state: firing twice gives
    /// identical successors, and `successors` is deterministic.
    #[test]
    fn successor_computation_is_deterministic(
        p1 in arb_program(3),
        p2 in arb_program(3),
    ) {
        let rules = Ruleset::new(ProtocolConfig::strict());
        let init = SystemState::initial(p1, p2);
        let a: Vec<(RuleId, SystemState)> = rules.successors(&init);
        let b: Vec<(RuleId, SystemState)> = rules.successors(&init);
        prop_assert_eq!(&a, &b);
        for (rule, succ) in &a {
            let fired = rules.try_fire(*rule, &init);
            prop_assert_eq!(fired.as_ref(), Some(succ));
        }
    }

    /// System states serialise and deserialise losslessly (serde).
    #[test]
    fn system_state_serde_roundtrip(
        p1 in arb_program(3),
        p2 in arb_program(3),
        seed in any::<u64>(),
    ) {
        let rules = Ruleset::new(ProtocolConfig::full());
        let init = SystemState::initial(p1, p2);
        // Roundtrip a mid-walk state, which has interesting channel
        // contents.
        let mut sampled = init.clone();
        let mut n = 0;
        random_walk(&rules, &init, seed, |s| {
            n += 1;
            if n == 5 {
                sampled = s.clone();
            }
        });
        let json = serde_json::to_string(&sampled).expect("serialise");
        let back: SystemState = serde_json::from_str(&json).expect("deserialise");
        prop_assert_eq!(back, sampled);
    }

    /// The invariant structurally implies SWMR on arbitrary (even
    /// unreachable) states.
    #[test]
    fn invariant_implies_swmr_on_arbitrary_states(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inv = Invariant::for_config(&ProtocolConfig::strict());
        for _ in 0..20 {
            let s = cxl_repro::sketch::random_state(&mut rng);
            if inv.holds(&s) {
                assert!(swmr(&s), "invariant held but SWMR failed on:\n{s}");
            }
        }
    }
}
