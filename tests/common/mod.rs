//! Helpers shared by the reduction-focused integration suites
//! (`tests/reduction.rs`, `tests/replay_corpus.rs`).

use cxl_repro::mc::{PorMode, ReductionConfig};

/// Shorthand [`ReductionConfig`] constructor.
#[must_use]
pub fn rc(symmetry: bool, data_symmetry: bool, por: PorMode) -> ReductionConfig {
    ReductionConfig { symmetry, data_symmetry, por }
}

/// Every non-inert engine combination: {symmetry} × {data-symmetry} ×
/// {off, on, wide} minus the all-off identity. Both suites iterate this
/// one list, so adding an engine or POR tier widens every matrix at
/// once.
#[must_use]
pub fn all_engine_combos() -> Vec<ReductionConfig> {
    let mut out = Vec::new();
    for symmetry in [false, true] {
        for data_symmetry in [false, true] {
            for por in [PorMode::Off, PorMode::On, PorMode::Wide] {
                if symmetry || data_symmetry || por != PorMode::Off {
                    out.push(rc(symmetry, data_symmetry, por));
                }
            }
        }
    }
    out
}
