//! Helpers shared by the reduction-focused integration suites
//! (`tests/reduction.rs`, `tests/replay_corpus.rs`).

use cxl_repro::mc::{CanonMode, PorMode, ReductionConfig};

/// Shorthand [`ReductionConfig`] constructor (canonicalizer left on
/// `auto`; use [`rcc`] to pin an engine).
#[must_use]
pub fn rc(symmetry: bool, data_symmetry: bool, por: PorMode) -> ReductionConfig {
    rcc(symmetry, data_symmetry, por, CanonMode::Auto)
}

/// [`ReductionConfig`] constructor with an explicit canonicalizer.
#[must_use]
pub fn rcc(
    symmetry: bool,
    data_symmetry: bool,
    por: PorMode,
    canon: CanonMode,
) -> ReductionConfig {
    ReductionConfig { symmetry, data_symmetry, por, canon }
}

/// Every non-inert engine combination: {symmetry} × {data-symmetry} ×
/// {off, on, wide} minus the all-off identity, plus pinned-canonicalizer
/// variants (refine and brute) of the fully-armed joint combinations.
/// Both suites iterate this one list, so adding an engine, POR tier, or
/// canonicalizer widens every matrix at once.
#[must_use]
pub fn all_engine_combos() -> Vec<ReductionConfig> {
    let mut out = Vec::new();
    for symmetry in [false, true] {
        for data_symmetry in [false, true] {
            for por in [PorMode::Off, PorMode::On, PorMode::Wide] {
                if symmetry || data_symmetry || por != PorMode::Off {
                    out.push(rc(symmetry, data_symmetry, por));
                }
                // The canonicalizer only matters on the joint
                // (device × value) path; pin both engines there.
                if symmetry && data_symmetry {
                    out.push(rcc(symmetry, data_symmetry, por, CanonMode::Refine));
                    out.push(rcc(symmetry, data_symmetry, por, CanonMode::Brute));
                }
            }
        }
    }
    out
}
