//! Telemetry-subsystem guarantees: the metrics stream is an exact
//! decomposition of the final report, attaching a recorder never changes
//! a single bit of the exploration result, and the flight recorder's
//! event history survives a checkpoint/resume crash boundary.
//!
//! The headline contract (ISSUE acceptance bar): for every reduction
//! combo at N ∈ {2, 3}, the per-level JSONL records written by
//! `MetricsRecorder` must *sum* to the final report's totals — states,
//! transitions, depth — and a spill-enabled run killed mid-search and
//! resumed must have its two sessions' level records sum to the
//! uninterrupted run's totals, with the resumed flight ring still
//! holding the pre-kill checkpoint event.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{ProtocolConfig, Ruleset, SystemState};
use cxl_repro::mc::{
    CheckOptions, CheckpointPolicy, Exploration, FlightEvent, FlightKind, LevelRecord,
    MetricsRecorder, ModelChecker, ProgressMode, Recorder, Reducer, Reduction, ReductionConfig,
    RunSummary, SwmrProperty,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

mod common;
use common::all_engine_combos;

/// A fresh scratch directory under the system temp root, unique per
/// test (and per process, so parallel `cargo test` invocations never
/// collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxl-telemetry-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A checkpoint policy that snapshots at *every* level boundary.
fn eager_policy(dir: &std::path::Path) -> CheckpointPolicy {
    let mut policy = CheckpointPolicy::new(dir);
    policy.every = Duration::ZERO;
    policy
}

/// Mixed store/load grids small enough for the full reduction matrix.
fn grid(n: usize) -> SystemState {
    match n {
        2 => SystemState::initial(programs::stores(1, 2), programs::loads(2)),
        3 => SystemState::initial_n(
            3,
            vec![
                vec![Instruction::Store(1), Instruction::Load].into(),
                vec![Instruction::Store(2)].into(),
                programs::loads(1),
            ],
        ),
        _ => unreachable!("matrix covers N in {{2, 3}}"),
    }
}

/// Build the reducer for a combo, mirroring how `explore` wires one up.
fn reducer_for(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    combo: Option<ReductionConfig>,
) -> Option<Arc<dyn Reducer>> {
    let combo = combo?;
    let red = Reduction::new(&Ruleset::with_devices(cfg, n), init, combo);
    red.is_active().then(|| Arc::new(red) as Arc<dyn Reducer>)
}

fn explore_with(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    opts: CheckOptions,
) -> Exploration {
    ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts).explore(init, &[&SwmrProperty])
}

/// An in-memory recorder: the raw structs, before any serialization.
#[derive(Default)]
struct Collecting {
    levels: Mutex<Vec<LevelRecord>>,
    events: Mutex<Vec<FlightEvent>>,
    summary: Mutex<Option<RunSummary>>,
}

impl Recorder for Collecting {
    fn record_level(&self, record: &LevelRecord) {
        self.levels.lock().unwrap().push(record.clone());
    }
    fn record_event(&self, event: &FlightEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
    fn finish(&self, summary: &RunSummary) {
        *self.summary.lock().unwrap() = Some(summary.clone());
    }
}

/// Extract `"key":<integer>` from a JSONL line this suite's own sinks
/// wrote — the format is under our control, so a string scan suffices
/// (no JSON parser in the dependency-free tree).
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).unwrap_or_else(|| panic!("{key} missing from {line}")) + pat.len();
    let digits: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().unwrap_or_else(|_| panic!("bad {key} in {line}"))
}

fn is_kind(line: &str, kind: &str) -> bool {
    line.contains(&format!("\"kind\":\"{kind}\""))
}

/// Sum the `level` records of a metrics file: (stored, transitions,
/// max depth).
fn level_sums(path: &std::path::Path) -> (u64, u64, u64) {
    let text = std::fs::read_to_string(path).expect("read metrics file");
    let mut stored = 0;
    let mut transitions = 0;
    let mut depth = 0;
    for line in text.lines().filter(|l| is_kind(l, "level")) {
        stored += field_u64(line, "stored");
        transitions += field_u64(line, "transitions");
        depth = depth.max(field_u64(line, "depth"));
    }
    (stored, transitions, depth)
}

/// The metrics stream must be an exact decomposition of the report:
/// level `stored` counts sum to the state count (minus the initial
/// state, which no level commits), `transitions` sum exactly, the
/// deepest record matches the report depth, and the trailing summary
/// record repeats the headline totals — across the whole reduction
/// matrix, sequential and sharded.
#[test]
fn jsonl_level_records_sum_to_final_report_across_reduction_matrix() {
    let cfg = ProtocolConfig::strict();
    let combos: Vec<Option<ReductionConfig>> =
        std::iter::once(None).chain(all_engine_combos().into_iter().map(Some)).collect();
    let dir = scratch("jsonl-sums");
    for n in [2usize, 3] {
        let init = grid(n);
        for (i, combo) in combos.iter().enumerate() {
            for shards in [None, Some(3)] {
                let ctx = format!("N={n} combo#{i} shards={shards:?}");
                let path = dir.join(format!("m-{n}-{i}-{}.jsonl", shards.unwrap_or(1)));
                let rec = MetricsRecorder::new(ProgressMode::Off, Some(&path)).unwrap();
                let exploration = explore_with(
                    cfg,
                    n,
                    &init,
                    CheckOptions {
                        shards,
                        reduction: reducer_for(cfg, n, &init, *combo),
                        telemetry: Some(Arc::new(rec)),
                        ..CheckOptions::default()
                    },
                );
                let report = &exploration.report;
                let (stored, transitions, depth) = level_sums(&path);
                assert_eq!(stored + 1, report.states as u64, "{ctx}: states");
                assert_eq!(transitions, report.transitions as u64, "{ctx}: transitions");
                assert_eq!(depth, report.depth as u64, "{ctx}: depth");

                let text = std::fs::read_to_string(&path).unwrap();
                let summary = text
                    .lines()
                    .rfind(|l| is_kind(l, "summary"))
                    .expect("summary record");
                assert_eq!(field_u64(summary, "states"), report.states as u64, "{ctx}");
                assert_eq!(field_u64(summary, "transitions"), report.transitions as u64, "{ctx}");
                assert_eq!(field_u64(summary, "schema_version"), 1, "{ctx}");
            }
        }
    }
}

/// Attaching a recorder must not perturb the exploration: the packed
/// arena, successor counts, and every report statistic come out
/// bit-identical, sequential and sharded. (The recorder-off run is the
/// zero-cost path; this pins that the instrumented path takes all the
/// same decisions.)
#[test]
fn recorder_attached_results_are_bit_identical() {
    let cfg = ProtocolConfig::strict();
    for n in [2usize, 3] {
        let init = grid(n);
        for shards in [None, Some(3)] {
            let ctx = format!("N={n} shards={shards:?}");
            let plain = explore_with(
                cfg,
                n,
                &init,
                CheckOptions { shards, ..CheckOptions::default() },
            );
            let collector = Arc::new(Collecting::default());
            let recorded = explore_with(
                cfg,
                n,
                &init,
                CheckOptions {
                    shards,
                    telemetry: Some(Arc::clone(&collector) as Arc<dyn Recorder>),
                    ..CheckOptions::default()
                },
            );
            assert_eq!(plain.arena, recorded.arena, "{ctx}: packed arena");
            assert_eq!(
                plain.successor_counts, recorded.successor_counts,
                "{ctx}: successor counts"
            );
            let (p, r) = (&plain.report, &recorded.report);
            assert_eq!(p.states, r.states, "{ctx}: states");
            assert_eq!(p.transitions, r.transitions, "{ctx}: transitions");
            assert_eq!(p.depth, r.depth, "{ctx}: depth");
            assert_eq!(p.terminal_states, r.terminal_states, "{ctx}: terminals");
            assert_eq!(p.rule_firings, r.rule_firings, "{ctx}: firings");

            // And the recorder actually saw the run: levels sum to the
            // report, the summary mirrors it, phase profile present.
            let levels = collector.levels.lock().unwrap();
            let stored: usize = levels.iter().map(|l| l.stored).sum();
            assert_eq!(stored + 1, r.states, "{ctx}: collected levels");
            let summary = collector.summary.lock().unwrap();
            let summary = summary.as_ref().expect("finish() called");
            assert_eq!(summary.states, r.states, "{ctx}: summary");
            assert!(summary.clean, "{ctx}: clean grid");
            assert!(r.profile.is_some(), "{ctx}: profile recorded");
        }
    }
}

/// The flight ring must ride inside checkpoints: a run killed right
/// after a checkpoint write and resumed by a fresh checker still sees
/// the pre-kill events — including the `checkpoint_write` marker laid
/// down before the file was encoded — followed by a `resume` marker and
/// the post-resume history, with strictly increasing sequence numbers.
#[test]
fn flight_ring_survives_checkpoint_resume() {
    let cfg = ProtocolConfig::strict();
    let init = grid(2);
    let dir = scratch("flight-resume");
    let cut = 3usize;

    let interrupted = explore_with(
        cfg,
        2,
        &init,
        CheckOptions {
            max_depth: Some(cut),
            checkpoint: Some(eager_policy(&dir)),
            telemetry: Some(Arc::new(Collecting::default())),
            ..CheckOptions::default()
        },
    );
    assert!(interrupted.report.truncated, "interruption must truncate");
    let pre_kill: Vec<FlightEvent> = interrupted.report.flight.clone();
    assert!(
        pre_kill.iter().any(|e| e.kind == FlightKind::CheckpointWrite),
        "pre-kill run must have recorded its checkpoint writes: {pre_kill:?}"
    );
    drop(interrupted);

    let resumed = ModelChecker::with_options(
        Ruleset::with_devices(cfg, 2),
        CheckOptions {
            checkpoint: Some(eager_policy(&dir)),
            telemetry: Some(Arc::new(Collecting::default())),
            ..CheckOptions::default()
        },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect("resume from checkpoint");
    let flight = &resumed.report.flight;

    // Pre-kill history is still there…
    assert!(
        flight.iter().any(|e| e.kind == FlightKind::CheckpointWrite
            && e.a < cut as u64
            && pre_kill.iter().any(|p| p.seq == e.seq)),
        "resumed flight ring lost the pre-kill checkpoint event: {flight:?}"
    );
    // …the crash boundary itself is marked…
    assert!(
        flight.iter().any(|e| e.kind == FlightKind::Resume),
        "no resume marker: {flight:?}"
    );
    // …new history continued after it, and seq never reset.
    assert!(
        flight.iter().any(|e| e.kind == FlightKind::LevelCommit && e.a > cut as u64),
        "no post-resume level commits: {flight:?}"
    );
    for pair in flight.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must be strictly increasing: {flight:?}");
    }
}

/// Metrics across a crash boundary, with the spill layer on: the level
/// records of the interrupted session plus those of the resumed session
/// must sum to exactly the uninterrupted run's totals — no level lost,
/// none double-counted.
#[test]
fn interrupted_plus_resumed_metrics_sum_to_uninterrupted_totals() {
    let cfg = ProtocolConfig::strict();
    let init = grid(3);
    let dir = scratch("resume-sums");
    let spill_opts = |dir: &std::path::Path, tag: &str| CheckOptions {
        delta_keyframe: 8,
        spill_dir: Some(dir.join(format!("spill-{tag}"))),
        spill_budget: Some(0),
        ..CheckOptions::default()
    };

    let full_metrics = dir.join("full.jsonl");
    let rec = MetricsRecorder::new(ProgressMode::Off, Some(&full_metrics)).unwrap();
    let baseline = explore_with(
        cfg,
        3,
        &init,
        CheckOptions { telemetry: Some(Arc::new(rec)), ..spill_opts(&dir, "full") },
    );
    assert!(!baseline.report.truncated, "baseline must complete");
    assert!(baseline.report.spilled_extents > 0, "spill layer must engage");
    let cut = baseline.report.depth / 2;
    assert!(cut >= 1, "grid too shallow to interrupt");

    let first_metrics = dir.join("first.jsonl");
    let rec = MetricsRecorder::new(ProgressMode::Off, Some(&first_metrics)).unwrap();
    let interrupted = explore_with(
        cfg,
        3,
        &init,
        CheckOptions {
            max_depth: Some(cut),
            checkpoint: Some(eager_policy(&dir)),
            telemetry: Some(Arc::new(rec)),
            ..spill_opts(&dir, "cut")
        },
    );
    assert!(interrupted.report.truncated, "interruption must truncate");
    drop(interrupted);

    let second_metrics = dir.join("second.jsonl");
    let rec = MetricsRecorder::new(ProgressMode::Off, Some(&second_metrics)).unwrap();
    let resumed = ModelChecker::with_options(
        Ruleset::with_devices(cfg, 3),
        CheckOptions {
            checkpoint: Some(eager_policy(&dir)),
            telemetry: Some(Arc::new(rec)),
            ..spill_opts(&dir, "cut")
        },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect("resume from checkpoint");
    assert_eq!(resumed.report.states, baseline.report.states, "resume must converge");

    let (s1, t1, d1) = level_sums(&first_metrics);
    let (s2, t2, d2) = level_sums(&second_metrics);
    let (sf, tf, df) = level_sums(&full_metrics);
    assert_eq!(s1 + s2, sf, "stored: sessions must partition the run");
    assert_eq!(t1 + t2, tf, "transitions: sessions must partition the run");
    assert_eq!(d1, cut as u64, "first session stops at the cut");
    assert_eq!(d2, df, "second session reaches the full depth");
    assert_eq!(sf + 1, baseline.report.states as u64, "full-run sanity");
}
