//! The reproduction's substitute for paper Theorem 6.2
//! (`SWMR_CXL_cache`): for bounded device programs the model is
//! finite-state, and exhaustive exploration verifies that every reachable
//! state satisfies SWMR and the full inductive invariant, and that the
//! system is deadlock-free.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{Invariant, ProtocolConfig, Ruleset, SystemState};
use cxl_repro::mc::{InvariantProperty, ModelChecker, SwmrProperty};

fn verify(cfg: ProtocolConfig, p1: impl Into<cxl_repro::core::Program>, p2: impl Into<cxl_repro::core::Program>) -> usize {
    let inv = InvariantProperty::new(Invariant::for_config(&cfg));
    let mc = ModelChecker::new(Ruleset::new(cfg));
    let init = SystemState::initial(p1, p2);
    let report = mc.check(&init, &[&SwmrProperty, &inv]);
    assert!(report.clean(), "{report}");
    assert!(!report.truncated);
    report.states
}

#[test]
fn theorem_6_2_analogue_on_the_headline_scenario() {
    let states = verify(ProtocolConfig::strict(), programs::store(42), programs::load());
    assert!(states > 20);
}

#[test]
fn theorem_6_2_analogue_on_longer_programs() {
    use Instruction::*;
    let states = verify(
        ProtocolConfig::strict(),
        vec![Load, Store(1), Evict, Load],
        vec![Store(2), Load, Evict],
    );
    assert!(states > 1_000, "long programs should exercise a large space, got {states}");
}

#[test]
fn theorem_6_2_analogue_under_the_full_config() {
    use Instruction::*;
    verify(
        ProtocolConfig::full(),
        vec![Store(1), Evict, Load],
        vec![Load, Store(2), Evict],
    );
}

#[test]
fn initial_states_satisfy_the_invariant() {
    // Paper §6: "If initial_state(Σ) then inv(Σ)".
    let cfg = ProtocolConfig::strict();
    let inv = Invariant::for_config(&cfg);
    use Instruction::*;
    for p1 in [vec![], vec![Load], vec![Store(3)], vec![Evict, Load]] {
        for p2 in [vec![], vec![Store(4)], vec![Evict]] {
            assert!(inv.holds(&SystemState::initial(p1.clone(), p2.clone())));
        }
    }
}

#[test]
fn fine_grained_invariant_agrees_with_standard_on_reachable_states() {
    let cfg = ProtocolConfig::strict();
    let std_inv = Invariant::for_config(&cfg);
    let fine_inv = Invariant::fine_grained(&cfg);
    let mc = ModelChecker::new(Ruleset::new(cfg));
    let init = SystemState::initial(programs::store(42), programs::load());
    for st in mc.reachable(&init) {
        assert_eq!(
            std_inv.holds(&st),
            fine_inv.holds(&st),
            "granularities must agree on:\n{st}"
        );
    }
}
