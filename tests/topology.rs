//! N-device topology tests.
//!
//! Three layers of coverage for the DeviceId→Topology generalisation:
//!
//! 1. **Pre-refactor pinning** — the generic N=2 pipeline must reproduce
//!    the *recorded* exploration results of the closed two-device model
//!    (state counts, transition counts, BFS depth, terminal counts, total
//!    rule firings, and first-violation schedules, captured from the
//!    pre-refactor tree at commit 8286422 for strict/full/relaxed
//!    configurations over the default program grid).
//! 2. **3-device strict SWMR sweep** — a bounded grid of three-device
//!    programs explores cleanly under the strict configuration: SWMR and
//!    the full N-device invariant hold on every reachable state and every
//!    terminal state is quiescent.
//! 3. **3-device violation reproduction** — the Table 3 Snoop-pushes-GO
//!    violation reproduces with a third device present, both idle and
//!    loading, and the witness still runs through the buggy
//!    `IsadSnpInv` rule.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{Invariant, ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::mc::{InvariantProperty, ModelChecker, SwmrProperty};
use cxl_repro::sketch::default_program_grid;

// -------------------------------------------------------------------
// 1. Pre-refactor pinning.
// -------------------------------------------------------------------

/// One recorded baseline row: `(config, scenario, states, transitions,
/// depth, terminals, total firings, first-violation schedule)`.
type RecordedRow = (&'static str, &'static str, usize, usize, usize, usize, u64, &'static str);

/// Exploration results recorded by running the pre-refactor two-device
/// pipeline (commit 8286422) over `default_program_grid()` plus the
/// paper's headline scenario, exploring with the SWMR property and
/// `max_violations: 1`.
const RECORDED: &[RecordedRow] = &[
    ("strict", "grid0", 93, 160, 12, 4, 160, ""),
    ("strict", "grid1", 608, 1073, 21, 12, 1073, ""),
    ("strict", "grid2", 21, 35, 8, 1, 35, ""),
    ("strict", "grid3", 312, 531, 22, 9, 531, ""),
    ("strict", "grid4", 228, 410, 16, 7, 410, ""),
    ("strict", "grid5", 30, 47, 14, 1, 47, ""),
    ("strict", "headline", 93, 160, 12, 4, 160, ""),
    ("full", "grid0", 93, 160, 12, 4, 160, ""),
    ("full", "grid1", 726, 1366, 21, 13, 1366, ""),
    ("full", "grid2", 21, 35, 8, 1, 35, ""),
    ("full", "grid3", 356, 622, 22, 13, 622, ""),
    ("full", "grid4", 325, 578, 17, 12, 578, ""),
    ("full", "grid5", 30, 47, 14, 1, 47, ""),
    ("full", "headline", 93, 160, 12, 4, 160, ""),
    (
        "relax_spg", "grid0", 139, 264, 9, 0, 264,
        "InvalidLoad2>InvalidStore1>HostInvalidRdShared2>HostSharedRdOwnOther1>ImadData1>\
         IsadSnpInvBuggy2>IsadGo2>IsdData2>HostMaSnpRsp1>ImaGo1",
    ),
    (
        "relax_spg", "grid1", 285, 482, 9, 0, 482,
        "InvalidLoad1>InvalidStore2>HostInvalidRdShared1>HostSharedRdOwnOther2>ImadData2>\
         IsadSnpInvBuggy1>IsadGo1>IsdData1>HostMaSnpRsp2>ImaGo2",
    ),
    ("relax_spg", "grid2", 21, 35, 8, 1, 35, ""),
    ("relax_spg", "grid3", 312, 531, 22, 9, 531, ""),
    (
        "relax_spg", "grid4", 239, 427, 9, 0, 427,
        "InvalidLoad1>InvalidStore2>HostInvalidRdShared1>HostSharedRdOwnOther2>ImadData2>\
         IsadSnpInvBuggy1>IsadGo1>IsdData1>HostMaSnpRsp2>ImaGo2",
    ),
    ("relax_spg", "grid5", 30, 47, 14, 1, 47, ""),
    (
        "relax_spg", "headline", 139, 264, 9, 0, 264,
        "InvalidLoad2>InvalidStore1>HostInvalidRdShared2>HostSharedRdOwnOther1>ImadData1>\
         IsadSnpInvBuggy2>IsadGo2>IsdData2>HostMaSnpRsp1>ImaGo1",
    ),
    (
        "relax_ntt", "grid0", 101, 172, 7, 0, 172,
        "InvalidLoad2>InvalidStore1>HostInvalidRdShared2>HostSharedRdOwnLast1>IsadGo2>\
         IsdData2>ImadGo1>ImdData1",
    ),
    (
        "relax_ntt", "grid1", 164, 255, 7, 0, 255,
        "InvalidLoad1>InvalidStore2>HostInvalidRdShared1>HostSharedRdOwnLast2>IsadGo1>\
         IsdData1>ImadGo2>ImdData2",
    ),
    ("relax_ntt", "grid2", 21, 35, 8, 1, 35, ""),
    ("relax_ntt", "grid3", 306, 513, 22, 9, 513, ""),
    (
        "relax_ntt", "grid4", 146, 236, 7, 0, 236,
        "InvalidLoad1>InvalidStore2>HostInvalidRdShared1>HostSharedRdOwnLast2>IsadGo1>\
         IsdData1>ImadGo2>ImdData2",
    ),
    ("relax_ntt", "grid5", 30, 47, 14, 1, 47, ""),
    (
        "relax_ntt", "headline", 101, 172, 7, 0, 172,
        "InvalidLoad2>InvalidStore1>HostInvalidRdShared2>HostSharedRdOwnLast1>IsadGo2>\
         IsdData2>ImadGo1>ImdData1",
    ),
];

fn config_named(name: &str) -> ProtocolConfig {
    match name {
        "strict" => ProtocolConfig::strict(),
        "full" => ProtocolConfig::full(),
        "relax_spg" => ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        "relax_ntt" => ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking),
        other => panic!("unknown config {other}"),
    }
}

fn scenario_named(name: &str) -> (cxl_repro::core::Program, cxl_repro::core::Program) {
    if name == "headline" {
        return (programs::store(42), programs::load());
    }
    let idx: usize = name.strip_prefix("grid").expect("grid scenario").parse().expect("index");
    let (p1, p2) = default_program_grid()[idx].clone();
    (p1.into(), p2.into())
}

#[test]
fn generic_pipeline_reproduces_recorded_two_device_results() {
    for &(cfg_name, scenario, states, transitions, depth, terminals, firings, viol) in RECORDED {
        let cfg = config_named(cfg_name);
        let (p1, p2) = scenario_named(scenario);
        let mc = ModelChecker::new(Ruleset::new(cfg));
        let exp = mc.explore(&SystemState::initial(p1, p2), &[&SwmrProperty]);
        let r = &exp.report;
        let ctx = format!("{cfg_name}/{scenario}");
        assert_eq!(r.states, states, "{ctx}: state count drifted from the recorded baseline");
        assert_eq!(r.transitions, transitions, "{ctx}: transition count drifted");
        assert_eq!(r.depth, depth, "{ctx}: BFS depth drifted");
        assert_eq!(r.terminal_states, terminals, "{ctx}: terminal count drifted");
        let total: u64 = r.rule_firings.values().sum();
        assert_eq!(total, firings, "{ctx}: rule-firing total drifted");
        let got_viol = r
            .violations
            .first()
            .map(|v| v.trace.rule_names().join(">"))
            .unwrap_or_default();
        let expected: String = viol.split_whitespace().collect();
        assert_eq!(got_viol, expected, "{ctx}: first-violation schedule drifted");
    }
}

#[test]
fn recorded_baseline_also_matches_the_naive_pipeline() {
    // Spot-check that the retained naive oracle agrees with the recorded
    // numbers too (the full naive/optimized/parallel equivalence is held
    // by tests/differential.rs).
    let (p1, p2) = scenario_named("headline");
    let mc = ModelChecker::new(Ruleset::new(ProtocolConfig::strict()));
    let exp = mc.explore_naive(&SystemState::initial(p1, p2), &[&SwmrProperty]);
    assert_eq!(exp.report.states, 93);
    assert_eq!(exp.report.transitions, 160);
    assert_eq!(exp.report.terminal_states, 4);
}

// -------------------------------------------------------------------
// 2. 3-device strict SWMR sweep.
// -------------------------------------------------------------------

/// A bounded grid of three-device programs: concurrent stores, loads and
/// evictions spread over all three devices, including scenarios where two
/// peers share while the third upgrades (exercising the multi-sharer
/// snoop fan-out of `HostSharedRdOwnOther`).
fn three_device_grid() -> Vec<Vec<Vec<Instruction>>> {
    use Instruction::*;
    vec![
        vec![vec![Store(42)], vec![Load], vec![Load]],
        vec![vec![Load, Store(8)], vec![Store(9), Evict], vec![Load]],
        vec![vec![Store(10), Evict], vec![Load, Load], vec![Store(20)]],
        vec![vec![Evict, Evict], vec![Load], vec![Store(5), Evict]],
        vec![vec![Load], vec![Load], vec![Store(7)]],
    ]
}

#[test]
fn three_device_strict_sweep_passes_swmr_and_invariant() {
    let cfg = ProtocolConfig::strict();
    let inv = InvariantProperty::new(Invariant::for_devices(&cfg, 3));
    let mc = ModelChecker::new(Ruleset::with_devices(cfg, 3));
    for progs in three_device_grid() {
        let init = SystemState::initial_n(3, progs.iter().cloned().map(Into::into).collect());
        let report = mc.check(&init, &[&SwmrProperty, &inv]);
        assert!(report.clean(), "3-device scenario {progs:?} broke:\n{report}");
        assert!(!report.truncated, "3-device scenario {progs:?} truncated");
        assert!(report.states > 2, "3-device scenario {progs:?} barely explored");
    }
}

#[test]
fn three_device_spaces_strictly_contain_their_two_device_embeddings() {
    // Embedding a two-device scenario into a three-device topology with an
    // idle third device must reproduce at least the two-device behaviours
    // (same programs, more devices): the reachable space is never smaller,
    // and for a passive peer it coincides in size.
    let cfg = ProtocolConfig::strict();
    let mc2 = ModelChecker::new(Ruleset::new(cfg));
    let mc3 = ModelChecker::new(Ruleset::with_devices(cfg, 3));
    let two = mc2
        .check(&SystemState::initial(programs::store(42), programs::load()), &[&SwmrProperty]);
    let three_idle = mc3.check(
        &SystemState::initial_n(3, vec![programs::store(42), programs::loads(1)]),
        &[&SwmrProperty],
    );
    assert!(two.clean() && three_idle.clean());
    assert_eq!(
        two.states, three_idle.states,
        "an idle third device adds no transitions to the strict model"
    );
    // …while a *participating* third device genuinely enlarges the space.
    let three_loading = mc3.check(
        &SystemState::initial_n(
            3,
            vec![programs::store(42), programs::loads(1), programs::loads(1)],
        ),
        &[&SwmrProperty],
    );
    assert!(three_loading.clean());
    assert!(
        three_loading.states > two.states,
        "a loading third device must enlarge the space ({} vs {})",
        three_loading.states,
        two.states
    );
}

#[test]
fn four_device_smoke_explores_cleanly() {
    let cfg = ProtocolConfig::strict();
    let inv = InvariantProperty::new(Invariant::for_devices(&cfg, 4));
    let mc = ModelChecker::new(Ruleset::with_devices(cfg, 4));
    let init = SystemState::initial_n(
        4,
        vec![programs::store(42), programs::loads(1), programs::loads(1), programs::evicts(1)],
    );
    let report = mc.check(&init, &[&SwmrProperty, &inv]);
    assert!(report.clean(), "{report}");
    assert!(!report.truncated);
}

// -------------------------------------------------------------------
// 2b. 4-device strict-grid sweep (opened up by the packed state arena).
// -------------------------------------------------------------------

/// A bounded grid of four-device programs: every device participates,
/// including multi-sharer snoop fan-outs over three peers at once and
/// concurrent evictions racing upgrades.
fn four_device_grid() -> Vec<Vec<Vec<Instruction>>> {
    use Instruction::*;
    vec![
        vec![vec![Store(42)], vec![Load], vec![Load], vec![Load]],
        vec![vec![Store(1), Evict], vec![Load], vec![Load], vec![Store(2)]],
        vec![vec![Load, Load], vec![Store(9), Evict], vec![Load], vec![Evict]],
        vec![vec![Store(3)], vec![Store(4)], vec![Load, Evict], vec![Load]],
    ]
}

#[test]
fn four_device_strict_grid_sweep_fits_the_default_memory_budget() {
    // The whole grid explores exhaustively under default CheckOptions —
    // including the default packed-store memory budget — with SWMR and
    // the full 4-device invariant holding everywhere. Under the old
    // heap-`Arc` arena each of these spaces cost hundreds of bytes per
    // state; the packed arena keeps the entire sweep in the tens of
    // KiB range (asserted loosely below so the bound survives workload
    // tweaks).
    let cfg = ProtocolConfig::strict();
    let inv = InvariantProperty::new(Invariant::for_devices(&cfg, 4));
    let mc = ModelChecker::new(Ruleset::with_devices(cfg, 4));
    let mut total_states = 0usize;
    for progs in four_device_grid() {
        let init = SystemState::initial_n(4, progs.iter().cloned().map(Into::into).collect());
        let exp = mc.explore(&init, &[&SwmrProperty, &inv]);
        assert!(exp.report.clean(), "4-device scenario {progs:?} broke:\n{}", exp.report);
        assert!(!exp.report.truncated, "4-device scenario {progs:?} truncated");
        assert!(
            exp.bytes_per_state() < 128.0,
            "packed encoding regressed: {:.1} bytes/state",
            exp.bytes_per_state()
        );
        total_states += exp.report.states;
    }
    assert!(total_states > 20_000, "the grid should be a real sweep, got {total_states}");
}

#[test]
fn four_device_table3_violation_reproduces() {
    let init = SystemState::initial_n(4, vec![programs::store(42), programs::load()]);
    assert_table3_violation(&init, "two idle fourth-topology devices");
    let busy = SystemState::initial_n(
        4,
        vec![programs::store(42), programs::load(), programs::load(), programs::load()],
    );
    assert_table3_violation(&busy, "all four devices active");
}

// -------------------------------------------------------------------
// 3. 3-device Table 3 violation reproduction.
// -------------------------------------------------------------------

fn assert_table3_violation(init: &SystemState, label: &str) {
    let mc = ModelChecker::new(Ruleset::with_devices(
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        init.device_count(),
    ));
    let report = mc.check(init, &[&SwmrProperty]);
    let v = report
        .violations
        .first()
        .unwrap_or_else(|| panic!("{label}: SWMR violation must be reachable:\n{report}"));
    assert!(
        v.trace.rule_names().iter().any(|r| r.starts_with("IsadSnpInvBuggy")),
        "{label}: the witness must run through the buggy ISADSnpInv rule: {:?}",
        v.trace.rule_names()
    );
    assert!(
        !cxl_repro::core::swmr(v.trace.last_state()),
        "{label}: witness must end incoherent"
    );
}

#[test]
fn table3_violation_reproduces_with_an_idle_third_device() {
    let init = SystemState::initial_n(3, vec![programs::store(42), programs::load()]);
    assert_table3_violation(&init, "idle third device");
}

#[test]
fn table3_violation_reproduces_with_a_loading_third_device() {
    let init =
        SystemState::initial_n(3, vec![programs::store(42), programs::load(), programs::load()]);
    assert_table3_violation(&init, "loading third device");
}

#[test]
fn strict_three_device_model_has_no_table3_violation() {
    // Control: under the strict configuration the same 3-device scenarios
    // stay coherent.
    let mc = ModelChecker::new(Ruleset::with_devices(ProtocolConfig::strict(), 3));
    let init =
        SystemState::initial_n(3, vec![programs::store(42), programs::load(), programs::load()]);
    let report = mc.check(&init, &[&SwmrProperty]);
    assert!(report.clean(), "{report}");
}
