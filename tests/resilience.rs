//! Resilience-layer guarantees: crash recovery via checkpoint/resume,
//! panic-quarantined workers, the wall-clock watchdog, and the
//! graceful-degradation ladder.
//!
//! The headline contract (ISSUE acceptance bar): an exploration
//! interrupted at a BFS level boundary and resumed from its checkpoint
//! by a *fresh* checker must reproduce the uninterrupted run exactly —
//! verdict, state count, transition count, depth, terminal statistics,
//! per-rule firing counts, the packed arena byte-for-byte, and any
//! counterexample traces — across the reduction matrix at N ∈ {2, 3}.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::litmus::replay_trace;
use cxl_repro::mc::{
    CheckOptions, CheckpointError, CheckpointPolicy, DegradationAction, Exploration, ModelChecker,
    Reducer, Reduction, ReductionConfig, SwmrProperty, NOT_EXPANDED,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::all_engine_combos;

/// A fresh scratch directory under the system temp root, unique per
/// test (and per process, so parallel `cargo test` invocations never
/// collide). No tempfile crate in the tree — plain std suffices.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxl-resilience-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A checkpoint policy that snapshots at *every* level boundary —
/// deterministic, so tests never race the wall clock.
fn eager_policy(dir: &std::path::Path) -> CheckpointPolicy {
    let mut policy = CheckpointPolicy::new(dir);
    policy.every = Duration::ZERO;
    policy
}

/// Mixed store/load grids small enough for the full reduction matrix.
fn grid(n: usize) -> SystemState {
    match n {
        2 => SystemState::initial(programs::stores(1, 2), programs::loads(2)),
        3 => SystemState::initial_n(
            3,
            vec![
                vec![Instruction::Store(1), Instruction::Load].into(),
                vec![Instruction::Store(2)].into(),
                programs::loads(1),
            ],
        ),
        _ => unreachable!("matrix covers N in {{2, 3}}"),
    }
}

/// Build the reducer for a combo, mirroring how `explore` wires one up.
fn reducer_for(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    combo: Option<ReductionConfig>,
) -> Option<Arc<dyn Reducer>> {
    let combo = combo?;
    let red = Reduction::new(&Ruleset::with_devices(cfg, n), init, combo);
    red.is_active().then(|| Arc::new(red) as Arc<dyn Reducer>)
}

fn explore_with(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    opts: CheckOptions,
) -> Exploration {
    ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts).explore(init, &[&SwmrProperty])
}

/// Everything the acceptance bar demands must survive the crash.
fn assert_identical(baseline: &Exploration, resumed: &Exploration, ctx: &str) {
    let (b, r) = (&baseline.report, &resumed.report);
    assert_eq!(b.states, r.states, "{ctx}: state count");
    assert_eq!(b.transitions, r.transitions, "{ctx}: transition count");
    assert_eq!(b.depth, r.depth, "{ctx}: depth");
    assert_eq!(b.terminal_states, r.terminal_states, "{ctx}: terminals");
    assert_eq!(b.truncated, r.truncated, "{ctx}: truncated flag");
    assert_eq!(b.violations.len(), r.violations.len(), "{ctx}: violations");
    assert_eq!(b.deadlocks.len(), r.deadlocks.len(), "{ctx}: deadlocks");
    assert_eq!(b.rule_firings, r.rule_firings, "{ctx}: firing counts");
    assert_eq!(baseline.arena, resumed.arena, "{ctx}: packed arena");
    assert_eq!(
        baseline.successor_counts, resumed.successor_counts,
        "{ctx}: successor counts"
    );
}

#[test]
fn interrupted_then_resumed_matches_uninterrupted_across_reduction_matrix() {
    let cfg = ProtocolConfig::strict();
    let combos: Vec<Option<ReductionConfig>> =
        std::iter::once(None).chain(all_engine_combos().into_iter().map(Some)).collect();
    for n in [2usize, 3] {
        let init = grid(n);
        for (i, combo) in combos.iter().enumerate() {
            let ctx = format!("N={n} combo#{i} {combo:?}");
            let baseline = explore_with(
                cfg,
                n,
                &init,
                CheckOptions {
                    reduction: reducer_for(cfg, n, &init, *combo),
                    ..CheckOptions::default()
                },
            );
            assert!(!baseline.report.truncated, "{ctx}: baseline must complete");
            let cut = baseline.report.depth / 2;
            assert!(cut >= 1, "{ctx}: grid too shallow to interrupt");

            // Interrupt: stop at a mid-search level boundary with an
            // eager checkpoint, then drop the checker — every byte of
            // in-memory search state is gone, as after a crash.
            let dir = scratch(&format!("matrix-{n}-{i}"));
            let interrupted = explore_with(
                cfg,
                n,
                &init,
                CheckOptions {
                    max_depth: Some(cut),
                    checkpoint: Some(eager_policy(&dir)),
                    reduction: reducer_for(cfg, n, &init, *combo),
                    ..CheckOptions::default()
                },
            );
            assert!(interrupted.report.truncated, "{ctx}: interruption must truncate");
            assert!(interrupted.report.states < baseline.report.states, "{ctx}: partial");
            drop(interrupted);

            // Resume with the depth budget lifted: budgets are outside
            // the checkpoint fingerprint, so raising them is allowed.
            let resumed = ModelChecker::with_options(
                Ruleset::with_devices(cfg, n),
                CheckOptions {
                    checkpoint: Some(eager_policy(&dir)),
                    reduction: reducer_for(cfg, n, &init, *combo),
                    ..CheckOptions::default()
                },
            )
            .explore_resumed(&[&SwmrProperty])
            .expect("resume from checkpoint");
            assert!(resumed.report.resumed_from.is_some(), "{ctx}: must mark resumption");
            assert_identical(&baseline, &resumed, &ctx);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn violation_verdict_survives_the_resume_boundary() {
    // A violating run stops mid-level, so its final checkpoint is
    // *non-resumable*: resuming must reconstitute the recorded verdict —
    // same counts, same counterexample — rather than re-explore, and the
    // trace must still replay against the ruleset.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial(programs::store(42), programs::load());
    let dir = scratch("violation");
    let opts = CheckOptions {
        checkpoint: Some(eager_policy(&dir)),
        ..CheckOptions::default()
    };
    let direct = explore_with(cfg, 2, &init, opts.clone());
    assert!(!direct.report.violations.is_empty(), "Table 3 repro must violate SWMR");

    let resumed = ModelChecker::with_options(Ruleset::with_devices(cfg, 2), opts)
        .explore_resumed(&[&SwmrProperty])
        .expect("reconstitute the violating run");
    assert_eq!(direct.report.states, resumed.report.states);
    assert_eq!(direct.report.transitions, resumed.report.transitions);
    assert_eq!(direct.report.violations.len(), resumed.report.violations.len());
    let (dv, rv) = (&direct.report.violations[0], &resumed.report.violations[0]);
    assert_eq!(dv.property, rv.property);
    assert_eq!(dv.detail, rv.detail);
    assert_eq!(dv.trace.steps.len(), rv.trace.steps.len());
    let rules = Ruleset::with_devices(cfg, 2);
    replay_trace(&rules, &rv.trace).expect("reconstituted counterexample replays");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_budget_stops_at_a_boundary_and_resume_finishes_the_job() {
    // A zero budget expires at the very first level boundary: the run
    // must stop with a valid one-state partial report, leave a resumable
    // checkpoint, and a resume with the watchdog disarmed must land on
    // exactly the uninterrupted result.
    let cfg = ProtocolConfig::strict();
    let init = grid(3);
    let baseline = explore_with(cfg, 3, &init, CheckOptions::default());

    let dir = scratch("time-budget");
    let stopped = explore_with(
        cfg,
        3,
        &init,
        CheckOptions {
            time_budget: Some(Duration::ZERO),
            checkpoint: Some(eager_policy(&dir)),
            ..CheckOptions::default()
        },
    );
    assert!(stopped.report.truncated, "expired watchdog must truncate");
    assert!(stopped.report.truncated_by_time, "…and say why");
    assert_eq!(stopped.report.states, 1, "nothing beyond the initial state was expanded");
    drop(stopped);

    let resumed = ModelChecker::with_options(
        Ruleset::with_devices(cfg, 3),
        CheckOptions {
            checkpoint: Some(eager_policy(&dir)),
            ..CheckOptions::default()
        },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect("resume after time budget");
    assert!(!resumed.report.truncated_by_time, "lifted budget clears the flag");
    assert_identical(&baseline, &resumed, "time-budget resume");
    // Elapsed time accumulates across sessions rather than resetting.
    assert!(resumed.report.elapsed >= Duration::ZERO);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_completion_skips_the_final_checkpoint_write() {
    // Crash insurance has nothing to offer a run that finished clean:
    // at the default interval (no periodic snapshot fires in a short
    // run) no file must be left behind, while the eager policy's
    // boundary snapshots remain — and resuming one of those simply
    // re-explores to the same clean end.
    use cxl_repro::mc::checkpoint_path;
    let cfg = ProtocolConfig::strict();
    let init = SystemState::initial(programs::store(5), programs::load());

    let dir = scratch("skip-default");
    let done = explore_with(
        cfg,
        2,
        &init,
        CheckOptions { checkpoint: Some(CheckpointPolicy::new(&dir)), ..CheckOptions::default() },
    );
    assert!(!done.report.truncated && done.report.violations.is_empty());
    assert!(!checkpoint_path(&dir).exists(), "clean completion must not write a checkpoint");

    let eager = scratch("skip-eager");
    let _ = explore_with(
        cfg,
        2,
        &init,
        CheckOptions { checkpoint: Some(eager_policy(&eager)), ..CheckOptions::default() },
    );
    assert!(checkpoint_path(&eager).exists(), "boundary snapshots are left in place");
    let resumed = ModelChecker::with_options(
        Ruleset::with_devices(cfg, 2),
        CheckOptions { checkpoint: Some(eager_policy(&eager)), ..CheckOptions::default() },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect("a boundary snapshot of a finished run still resumes");
    assert_identical(&done, &resumed, "re-explored tail");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&eager);
}

#[test]
fn mismatched_configuration_or_topology_refuses_to_resume() {
    let init = SystemState::initial(programs::store(1), programs::load());
    let dir = scratch("mismatch");
    let strict = ProtocolConfig::strict();
    let _ = explore_with(
        strict,
        2,
        &init,
        CheckOptions { checkpoint: Some(eager_policy(&dir)), ..CheckOptions::default() },
    );

    // Same checkpoint, different protocol configuration.
    let relaxed = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let err = ModelChecker::with_options(
        Ruleset::with_devices(relaxed, 2),
        CheckOptions { checkpoint: Some(eager_policy(&dir)), ..CheckOptions::default() },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect_err("config drift must be refused");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "got {err}");

    // Same checkpoint, different device count.
    let err = ModelChecker::with_options(
        Ruleset::with_devices(strict, 3),
        CheckOptions { checkpoint: Some(eager_policy(&dir)), ..CheckOptions::default() },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect_err("topology drift must be refused");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "got {err}");

    // No checkpoint on disk at all.
    let empty = scratch("mismatch-empty");
    let err = ModelChecker::with_options(
        Ruleset::with_devices(strict, 2),
        CheckOptions { checkpoint: Some(eager_policy(&empty)), ..CheckOptions::default() },
    )
    .explore_resumed(&[&SwmrProperty])
    .expect_err("missing checkpoint must be an error, not a fresh run");
    assert!(matches!(err, CheckpointError::Io(_)), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn panicking_rule_evaluation_is_quarantined_not_fatal() {
    // Inject a deterministic fault through the prune hook (it runs
    // inside the supervised expansion region, like rule firing): the
    // panic must be caught, the poison state quarantined with a decoded
    // dump, and the rest of the space still explored to a verdict — on
    // the sequential driver and the worker pool alike.
    let cfg = ProtocolConfig::strict();
    let init = SystemState::initial(programs::store(7), programs::load());
    let run = |threads: usize| -> Exploration {
        let opts = CheckOptions {
            threads,
            prune: Some(Arc::new(|s: &SystemState| {
                assert!(s.counter != 1, "injected fault: poisoned state");
                false
            })),
            ..CheckOptions::default()
        };
        explore_with(cfg, 2, &init, opts)
    };
    let seq = run(1);
    assert!(!seq.report.quarantined.is_empty(), "the fault must be hit and quarantined");
    for q in &seq.report.quarantined {
        assert!(q.message.contains("injected fault"), "panic payload preserved: {}", q.message);
        assert!(!q.dump.is_empty(), "decoded dump attached");
        assert!(!q.packed.is_empty(), "packed bytes attached");
        assert_eq!(
            seq.successor_counts[q.state],
            NOT_EXPANDED,
            "poison states stay unexpanded"
        );
    }
    // Exploration carried on past the poison states.
    assert!(seq.report.states > seq.report.quarantined.len());
    assert!(seq.report.violations.is_empty(), "strict config stays coherent");

    let par = run(4);
    assert_eq!(
        seq.report.quarantined.len(),
        par.report.quarantined.len(),
        "deterministic fault → same quarantine set under the pool"
    );
    assert_eq!(seq.report.states, par.report.states);
    assert_eq!(seq.arena, par.arena, "deterministic merge survives quarantining");
}

#[test]
fn degradation_ladder_sheds_then_truncates_under_memory_pressure() {
    // Budget well below the run's real footprint: the ladder must record
    // a shed step before the hard truncation rung, the run must end as a
    // clean partial report, and the (non-resumable) final checkpoint
    // must reconstitute that exact report.
    let cfg = ProtocolConfig::strict();
    let init = SystemState::initial_n(
        3,
        vec![programs::stores(0, 2), programs::loads(2), programs::loads(1)],
    );
    let unbounded = explore_with(cfg, 3, &init, CheckOptions::default());
    let budget = unbounded.report.memory_bytes * 7 / 10;

    let dir = scratch("ladder");
    let opts = CheckOptions {
        mem_budget: Some(budget),
        checkpoint: Some(eager_policy(&dir)),
        ..CheckOptions::default()
    };
    let squeezed = explore_with(cfg, 3, &init, opts.clone());
    assert!(squeezed.report.truncated_by_memory, "budget must bite");
    assert!(squeezed.report.states < unbounded.report.states);
    let actions: Vec<_> = squeezed.report.sheds.iter().map(|s| &s.action).collect();
    assert!(
        actions.iter().any(|a| matches!(a, DegradationAction::ShedBuffers { .. })),
        "shed rung must fire before truncation: {actions:?}"
    );
    assert!(
        actions.iter().any(|a| matches!(a, DegradationAction::Truncate)),
        "hard rung recorded: {actions:?}"
    );
    for pair in squeezed.report.sheds.windows(2) {
        assert!(pair[0].at_states <= pair[1].at_states, "ladder steps are ordered");
    }

    let reconstituted = ModelChecker::with_options(Ruleset::with_devices(cfg, 3), opts)
        .explore_resumed(&[&SwmrProperty])
        .expect("mem-truncated checkpoint reconstitutes");
    assert_eq!(squeezed.report.states, reconstituted.report.states);
    assert_eq!(squeezed.report.truncated_by_memory, reconstituted.report.truncated_by_memory);
    assert_eq!(squeezed.report.sheds.len(), reconstituted.report.sheds.len());
    let _ = std::fs::remove_dir_all(&dir);
}
