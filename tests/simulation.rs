//! Integration tests for the workload simulator (`cxl-sim`): long seeded
//! walks through generated workloads, asserting coherence throughout, and
//! the §4.4 traffic comparison at workload scale.

use cxl_repro::core::ProtocolConfig;
use cxl_repro::sim::{InstructionMix, SimStats, Simulator, WorkloadSpec};

#[test]
fn long_workloads_run_coherently_under_both_configs() {
    for cfg in [ProtocolConfig::strict(), ProtocolConfig::full()] {
        let sim = Simulator::new(cfg);
        for (i, mix) in [
            InstructionMix::balanced(),
            InstructionMix::read_heavy(),
            InstructionMix::write_heavy(),
            InstructionMix::evict_heavy(),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = WorkloadSpec::new(24, mix, 1000 + i as u64);
            let stats = sim.run_workload(&spec, 3);
            assert_eq!(stats.instructions, 24 * 2 * 3, "every instruction retires");
            assert!(stats.throughput() > 0.0);
        }
    }
}

#[test]
fn read_heavy_workloads_have_cheap_loads() {
    // Shared hits retire in one step, so read-heavy mixes should show a
    // low mean load latency relative to store latency.
    let sim = Simulator::new(ProtocolConfig::strict());
    let spec = WorkloadSpec::new(20, InstructionMix::read_heavy(), 77);
    let mut total = SimStats::default();
    for k in 0..10 {
        total.merge(&sim.run_workload(&WorkloadSpec { seed: spec.seed + k, ..spec }, 1));
    }
    let load = total.latency.get("Load").expect("loads retired");
    assert!(load.count > 100);
    assert!(load.min == 1, "a shared-hit load retires in one step");
}

#[test]
fn section_4_4_traffic_saving_at_workload_scale() {
    // Across eviction-heavy workloads, the full config (which may answer
    // stale DirtyEvicts with GO_WritePullDrop) sends no more bogus data
    // than the baseline on the same seeds, and across many seeds it sends
    // strictly less in aggregate.
    let spec_base = WorkloadSpec::new(16, InstructionMix::evict_heavy(), 9000);
    let mut baseline = SimStats::default();
    let mut optimised = SimStats::default();
    for k in 0..30 {
        let spec = WorkloadSpec { seed: spec_base.seed + k, ..spec_base };
        baseline.merge(&Simulator::new(ProtocolConfig::strict()).run_workload(&spec, 1));
        optimised.merge(&Simulator::new(ProtocolConfig::full()).run_workload(&spec, 1));
    }
    assert!(baseline.bogus_data_messages > 0, "eviction-heavy runs must hit stale evictions");
    assert!(
        optimised.bogus_data_messages < baseline.bogus_data_messages,
        "the §4.4 optimisation should reduce bogus traffic in aggregate \
         (baseline {}, optimised {})",
        baseline.bogus_data_messages,
        optimised.bogus_data_messages
    );
}
