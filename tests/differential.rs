//! Differential tests pinning the optimized exploration pipeline to the
//! retained naive reference implementation.
//!
//! The PR that introduced fingerprinted dedup, guard-prefiltered
//! `successors_into`, terminal-count bookkeeping, and the persistent
//! parallel worker pool claims **bit-identical semantics** with the
//! original checker. These tests hold that claim over the full
//! `default_program_grid` (the same grid the obligation universe is built
//! from) under strict, full, and relaxed configurations, for all three
//! pipelines: naive, optimized-sequential, and optimized-parallel.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::mc::{CheckOptions, ModelChecker, Report, SwmrProperty};
use cxl_repro::sketch::{default_program_grid, random_state};

/// A violation's identity for cross-pipeline comparison: property name,
/// detail, and the exact rule schedule of its counterexample.
fn violation_keys(report: &Report) -> Vec<(String, String, Vec<String>)> {
    report
        .violations
        .iter()
        .map(|v| (v.property.clone(), v.detail.clone(), v.trace.rule_names()))
        .collect()
}

fn assert_equivalent(cfg: ProtocolConfig, init: &SystemState) {
    let naive_mc = ModelChecker::new(Ruleset::new(cfg));
    let naive = naive_mc.explore_naive(init, &[&SwmrProperty]);

    let opt_mc = ModelChecker::new(Ruleset::new(cfg));
    let opt = opt_mc.explore(init, &[&SwmrProperty]);

    let par_opts = CheckOptions { threads: 4, ..CheckOptions::default() };
    let par_mc = ModelChecker::with_options(Ruleset::new(cfg), par_opts);
    let par = par_mc.explore(init, &[&SwmrProperty]);

    for (label, other) in [("optimized", &opt), ("parallel", &par)] {
        assert_eq!(
            naive.report.states, other.report.states,
            "{label}: state count diverged for {cfg:?} from\n{init}"
        );
        assert_eq!(
            naive.report.transitions, other.report.transitions,
            "{label}: transition count diverged for {cfg:?} from\n{init}"
        );
        assert_eq!(
            naive.report.depth, other.report.depth,
            "{label}: BFS depth diverged for {cfg:?} from\n{init}"
        );
        assert_eq!(
            violation_keys(&naive.report),
            violation_keys(&other.report),
            "{label}: violation set diverged for {cfg:?} from\n{init}"
        );
        assert_eq!(
            naive.report.terminal_states, other.report.terminal_states,
            "{label}: terminal count diverged for {cfg:?} from\n{init}"
        );
        assert_eq!(
            naive.report.rule_firings, other.report.rule_firings,
            "{label}: rule firings diverged for {cfg:?} from\n{init}"
        );
        // Discovery order itself must match: the packed arenas are
        // byte-identical (the codec is deterministic, so this is the
        // strongest possible form of "same states in the same order").
        assert_eq!(
            naive.arena, other.arena,
            "{label}: discovery order diverged for {cfg:?} from\n{init}"
        );
    }
}

#[test]
fn differential_over_program_grid_strict() {
    for (p1, p2) in default_program_grid() {
        let init = SystemState::initial(p1, p2);
        assert_equivalent(ProtocolConfig::strict(), &init);
    }
}

#[test]
fn differential_over_program_grid_full() {
    for (p1, p2) in default_program_grid() {
        let init = SystemState::initial(p1, p2);
        assert_equivalent(ProtocolConfig::full(), &init);
    }
}

#[test]
fn differential_over_program_grid_relaxed() {
    // Relaxed configurations reach violations; the three pipelines must
    // find the same first counterexample (identical rule schedule).
    for relaxation in [Relaxation::SnoopPushesGo, Relaxation::NaiveTransientTracking] {
        for (p1, p2) in default_program_grid() {
            let init = SystemState::initial(p1, p2);
            assert_equivalent(ProtocolConfig::relaxed(relaxation), &init);
        }
    }
}

#[test]
fn successor_generation_agrees_on_synthesised_states() {
    // The guard prefilter must be sound beyond the reachable set too:
    // compare optimized vs naive successor generation on randomly
    // synthesised (frequently unreachable, invariant-violating) states.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for cfg in [
        ProtocolConfig::strict(),
        ProtocolConfig::full(),
        ProtocolConfig::relaxed(Relaxation::SnoopPushesGo),
        ProtocolConfig::relaxed(Relaxation::GoCannotTailgateSnoop),
        ProtocolConfig::relaxed(Relaxation::OneSnoopPerLine),
        ProtocolConfig::relaxed(Relaxation::NaiveTransientTracking),
    ] {
        let rules = Ruleset::new(cfg);
        let mut buf = Vec::new();
        for _ in 0..500 {
            let s = random_state(&mut rng);
            rules.successors_into(&s, &mut buf);
            let naive = rules.successors_naive(&s);
            assert_eq!(buf, naive, "divergence under {cfg:?} on synthesised state\n{s}");
        }
    }
}

#[test]
fn truncation_edge_case_checks_over_cap_batch() {
    // Regression (satellite fix): states generated in the same BFS batch
    // after `max_states` is reached must still be property-checked.
    //
    // From `[Store(42)] / [Load]` the initial state has exactly two
    // successors (`InvalidStore1`, `InvalidLoad2`), both with counter 1.
    // With `max_states: 1` only the first fits under the cap; the second
    // lands in the over-cap tail of the same batch. A property violated
    // by every counter>0 state must flag BOTH — the seed checker silently
    // dropped the over-cap one.
    let init = SystemState::initial(vec![Instruction::Store(42)], vec![Instruction::Load]);
    let cfg = ProtocolConfig::strict();
    let fresh_counter =
        cxl_repro::mc::boolean_property("fresh_counter", |s: &SystemState| s.counter == 0);

    let opts =
        CheckOptions { max_states: 1, max_violations: 10, ..CheckOptions::default() };
    let report = ModelChecker::with_options(Ruleset::new(cfg), opts)
        .check(&init, &[&fresh_counter]);
    assert!(report.truncated);
    assert_eq!(
        report.violations.len(),
        2,
        "both the stored and the over-cap successor must be checked: {report}"
    );
    // Every reported counterexample replays through the rule engine,
    // including the transiently-checked over-cap one.
    let rules = Ruleset::new(cfg);
    for v in &report.violations {
        let mut cur = v.trace.initial.clone();
        for step in &v.trace.steps {
            cur = rules.try_fire(step.rule, &cur).expect("trace step enabled");
            assert_eq!(&cur, &step.state);
        }
    }

    // With the default budget of one violation, the search still reports
    // one and stops — the over-cap tail respects max_violations.
    let opts = CheckOptions { max_states: 1, ..CheckOptions::default() };
    let report = ModelChecker::with_options(Ruleset::new(cfg), opts)
        .check(&init, &[&fresh_counter]);
    assert_eq!(report.violations.len(), 1);
}

#[test]
fn over_cap_tail_dedups_diamond_states() {
    // Independent device steps commute, so the same successor is often
    // reachable from two parents in one BFS batch (a diamond). In the
    // over-cap tail such a state must be property-checked ONCE: each
    // reported counterexample ends in a distinct state.
    let init = SystemState::initial(
        vec![Instruction::Store(1), Instruction::Store(2)],
        vec![Instruction::Load, Instruction::Load],
    );
    let stale = cxl_repro::mc::boolean_property("stale", |s: &SystemState| s.counter == 0);
    for cap in 2..=8usize {
        let opts = CheckOptions {
            max_states: cap,
            max_violations: 10_000,
            ..CheckOptions::default()
        };
        let report = ModelChecker::with_options(Ruleset::new(ProtocolConfig::strict()), opts)
            .check(&init, &[&stale]);
        assert!(report.truncated);
        let finals: Vec<_> =
            report.violations.iter().map(|v| v.trace.last_state().clone()).collect();
        for (i, a) in finals.iter().enumerate() {
            for b in &finals[i + 1..] {
                assert_ne!(a, b, "cap {cap}: one state reported twice in the over-cap tail");
            }
        }
    }
}
