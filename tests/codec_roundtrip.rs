//! Property tests for the packed state codec.
//!
//! The model checker's arena dedups on *packed bytes* (fingerprint plus
//! byte-equality fallback), so the whole pipeline rests on two codec
//! properties, probed here over randomised **reachable** states of
//! topologies `N ∈ 2..=4`:
//!
//! 1. **Exactness** — `decode(encode(s)) == s` for every reachable state
//!    (the arena must reproduce the state the rules produced, down to the
//!    last channel message, or traces and property checks silently drift);
//! 2. **Determinism** — equal states produce byte-equal encodings (the
//!    soundness condition for byte-equality dedup and packed-bytes
//!    fingerprinting: if two equal states could encode differently, the
//!    checker would count one state twice).

use cxl_repro::core::codec::StateCodec;
use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{ProtocolConfig, Ruleset, SystemState};
use cxl_repro::mc::{CheckOptions, ModelChecker};
use proptest::prelude::*;

/// One random instruction.
fn instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Load),
        (-1i64..50).prop_map(Instruction::Store),
        Just(Instruction::Evict),
    ]
}

/// A short random program (0–2 instructions keeps the explored spaces in
/// the hundreds-to-thousands range per case).
fn program() -> impl Strategy<Value = Vec<Instruction>> {
    proptest::collection::vec(instr(), 0..3usize)
}

/// Explore a bounded slice of the reachable space from the given
/// initial configuration, returning the exploration (packed arena).
fn explore_bounded(n: usize, progs: Vec<Vec<Instruction>>) -> cxl_repro::mc::Exploration {
    let opts = CheckOptions { max_states: 1_500, ..CheckOptions::default() };
    let mc = ModelChecker::with_options(
        Ruleset::with_devices(ProtocolConfig::full(), n),
        opts,
    );
    let init = SystemState::initial_n(n, progs.into_iter().map(Into::into).collect());
    mc.explore(&init, &[])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn decode_inverts_encode_over_reachable_states(
        n in 2usize..5,
        p1 in program(),
        p2 in program(),
        p3 in program(),
        p4 in program(),
    ) {
        let progs: Vec<Vec<Instruction>> =
            [p1, p2, p3, p4].into_iter().take(n).collect();
        let exp = explore_bounded(n, progs);
        let codec = *exp.arena.codec();
        prop_assert!(!exp.is_empty());
        for id in 0..exp.len() {
            let bytes = exp.arena.bytes_of(id);
            let decoded = codec.decode(bytes).expect("arena bytes must decode");
            // Exactness: the decoded state re-encodes to the same bytes…
            prop_assert_eq!(codec.encode(&decoded), bytes.to_vec());
            // …and a fresh decode of those bytes agrees (decode is a
            // function of the bytes alone).
            prop_assert_eq!(codec.decode(bytes).unwrap(), decoded);
        }
    }

    #[test]
    fn equal_states_encode_byte_identically(
        n in 2usize..5,
        p1 in program(),
        p2 in program(),
    ) {
        let progs: Vec<Vec<Instruction>> =
            [p1, p2].into_iter().take(n).collect();
        let exp = explore_bounded(n, progs);
        let codec = *exp.arena.codec();
        for id in (0..exp.len()).step_by(7) {
            let st = exp.state(id);
            // A clone (structurally equal by construction) and a
            // decode-then-reencode round trip must both be byte-equal to
            // the stored encoding — and fingerprints must agree.
            let via_clone = codec.encode(&st.clone());
            let stored = exp.arena.bytes_of(id);
            prop_assert_eq!(via_clone.as_slice(), stored);
            prop_assert_eq!(
                StateCodec::fingerprint(&via_clone),
                StateCodec::fingerprint(stored)
            );
            // Mutating the state must change the encoding (injectivity
            // spot check: a counter bump is the smallest perturbation).
            let mut other = st.clone();
            other.counter += 1;
            prop_assert_ne!(codec.encode(&other).as_slice(), stored);
        }
    }

    #[test]
    fn decode_into_scratch_matches_fresh_decode(
        n in 2usize..5,
        p1 in program(),
        p2 in program(),
    ) {
        // The hot path decodes frontier states into one reused scratch;
        // the scratch result must equal a fresh decode regardless of what
        // the scratch held before.
        let progs: Vec<Vec<Instruction>> =
            [p1, p2].into_iter().take(n).collect();
        let exp = explore_bounded(n, progs);
        let codec = *exp.arena.codec();
        let mut scratch = codec.blank();
        for id in 0..exp.len().min(64) {
            codec.decode_into(exp.arena.bytes_of(id), &mut scratch).unwrap();
            prop_assert_eq!(&scratch, &exp.arena.decode(id));
        }
    }
}
