//! Integration tests for the paper's §5: the litmus suite and the
//! restriction-necessity assessments, each explored exhaustively.

use cxl_repro::litmus::{relax, suite};

#[test]
fn the_papers_eight_litmus_tests_pass() {
    for lit in suite::paper_suite() {
        let res = lit.run();
        assert!(res.passed, "{res}");
        assert!(res.report.states > 1, "{}: exploration happened", res.name);
    }
}

#[test]
fn the_extended_litmus_suite_passes() {
    for lit in suite::full_suite() {
        let res = lit.run();
        assert!(res.passed, "{res}");
    }
}

#[test]
fn snoop_pushes_go_relaxation_reproduces_table3_class_violation() {
    let res = relax::snoop_pushes_go_test().run();
    assert!(res.passed, "{res}");
    let witness = res.witness.expect("witness");
    assert!(witness.rule_names().iter().any(|r| r.starts_with("IsadSnpInvBuggy")));
    // The witness is minimal-ish: BFS finds a shortest path, which is the
    // paper's 8-step flow (give or take completion-order nondeterminism).
    assert!(witness.len() <= 10, "BFS witness unexpectedly long: {}", witness.len());
}

#[test]
fn all_restriction_assessments_hold() {
    for lit in relax::restriction_suite() {
        let res = lit.run();
        assert!(res.passed, "{res}");
    }
}

#[test]
fn relaxed_models_reach_more_states() {
    // Paper §5.2: "if a particular restriction is relaxed, additional
    // states become reachable".
    use cxl_repro::core::instr::programs;
    use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
    use cxl_repro::mc::ModelChecker;

    let init = SystemState::initial(programs::store(42), programs::load());
    let strict = ModelChecker::new(Ruleset::new(ProtocolConfig::strict()))
        .check(&init, &[])
        .states;
    let relaxed = ModelChecker::new(Ruleset::new(ProtocolConfig::relaxed(
        Relaxation::SnoopPushesGo,
    )))
    .check(&init, &[])
    .states;
    assert!(
        relaxed > strict,
        "relaxation must enlarge the reachable space ({relaxed} vs {strict})"
    );
}

#[test]
fn stale_drop_ablation_shows_avoidable_traffic() {
    // Paper §4.4: the GO_WritePullDrop optimisation avoids bogus D2H data
    // traffic on stale dirty evictions.
    let (rows, artifact) = cxl_repro::bench_harness::stale_drop_ablation();
    assert!(!artifact.text.is_empty());
    let baseline_bogus: u64 =
        rows.iter().filter(|r| r.scenario.ends_with("baseline")).map(|r| r.bogus_pulls).sum();
    let optimised_drops: u64 = rows
        .iter()
        .filter(|r| r.scenario.ends_with("with_drop_optimisation"))
        .map(|r| r.drops)
        .sum();
    assert!(baseline_bogus > 0, "the racing scenarios must exercise stale evictions");
    assert!(optimised_drops > 0, "the optimisation must expose drop transitions");
}

#[test]
fn every_non_relaxed_rule_fires_somewhere() {
    // Coverage audit: over the full-config exploration of a scenario grid,
    // every rule except the deliberately buggy (relaxed-only) ones fires
    // at least once — no dead rules in the reconstruction.
    use cxl_repro::core::instr::Instruction::*;
    use cxl_repro::core::{
        DState, DeviceId, HState, ProtocolConfig, RuleCategory, Ruleset, StateBuilder,
        SystemState,
    };
    use cxl_repro::mc::ModelChecker;

    let cfg = ProtocolConfig::full();
    let mc = ModelChecker::new(Ruleset::new(cfg));
    let mut fired = std::collections::BTreeSet::new();
    let scenarios = vec![
        SystemState::initial(vec![Load, Store(1), Evict], vec![Store(2), Load, Evict]),
        SystemState::initial(vec![Store(1), Evict, Load], vec![Evict, Store(2)]),
        StateBuilder::new()
            .dev_cache(DeviceId::D1, 0, DState::S)
            .dev_cache(DeviceId::D2, 0, DState::S)
            .host(0, HState::S)
            .prog(DeviceId::D1, vec![Evict, Load])
            .prog(DeviceId::D2, vec![Store(3), Evict])
            .build(),
        StateBuilder::new()
            .dev_cache(DeviceId::D2, 5, DState::M)
            .host(0, HState::M)
            .prog(DeviceId::D1, vec![Load, Store(4)])
            .prog(DeviceId::D2, vec![Evict, Load])
            .build(),
        // Racing S→M upgrades: whoever loses is snooped in SMAD.
        StateBuilder::new()
            .dev_cache(DeviceId::D1, 0, DState::S)
            .dev_cache(DeviceId::D2, 0, DState::S)
            .host(0, HState::S)
            .prog(DeviceId::D1, vec![Store(6), Load])
            .prog(DeviceId::D2, vec![Store(7), Load])
            .build(),
        // Read/write hits on an owned line (device 1).
        StateBuilder::new()
            .dev_cache(DeviceId::D1, 2, DState::M)
            .host(0, HState::M)
            .prog(DeviceId::D1, vec![Load, Store(8), Load])
            .prog(DeviceId::D2, vec![Store(9)])
            .build(),
        // Write hit on an owned line (device 2).
        StateBuilder::new()
            .dev_cache(DeviceId::D2, 2, DState::M)
            .host(0, HState::M)
            .prog(DeviceId::D2, vec![Store(9), Evict])
            .prog(DeviceId::D1, vec![Load])
            .build(),
    ];
    for init in &scenarios {
        let report = mc.check(init, &[]);
        fired.extend(report.rule_firings.keys().map(|id| id.name()));
    }
    let rules = Ruleset::new(cfg);
    let unfired: Vec<String> = rules
        .rule_ids()
        .iter()
        .filter(|id| id.shape.category() != RuleCategory::Relaxed)
        .map(|id| id.name())
        .filter(|n| !fired.contains(n))
        .collect();
    assert!(unfired.is_empty(), "rules never exercised: {unfired:?}");
}
