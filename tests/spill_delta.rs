//! Beyond-RAM state store guarantees: parent-delta encoding and
//! cold-extent spilling must be *invisible* to results.
//!
//! The acceptance bar (ISSUE 8): an N=4 strict grid that truncates under
//! a deliberately small `mem_budget` completes un-truncated with
//! delta+spill armed, with verdict, state set, and traces bit-identical
//! to the unrestricted run; checkpoint→resume works across the reduction
//! matrix with a spill dir active; and the sharded driver's delta store
//! merges to the sequential driver's exact arena.

use cxl_repro::core::instr::{programs, Instruction};
use cxl_repro::core::{ProtocolConfig, Relaxation, Ruleset, SystemState};
use cxl_repro::litmus::replay_trace;
use cxl_repro::mc::{
    CheckOptions, CheckpointPolicy, Exploration, ModelChecker, Reducer, Reduction,
    ReductionConfig, SwmrProperty,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::all_engine_combos;

/// Fresh per-test scratch dir (no tempfile crate in the tree).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxl-spill-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn explore_with(
    cfg: ProtocolConfig,
    n: usize,
    init: &SystemState,
    opts: CheckOptions,
) -> Exploration {
    ModelChecker::with_options(Ruleset::with_devices(cfg, n), opts).explore(init, &[&SwmrProperty])
}

/// Delta+spill options: keyframe every 8 ancestors, spill every
/// completed level (watermark 0) into `dir`.
fn compressed_opts(dir: &std::path::Path) -> CheckOptions {
    CheckOptions {
        delta_keyframe: 8,
        spill_dir: Some(dir.to_path_buf()),
        spill_budget: Some(0),
        ..CheckOptions::default()
    }
}

/// The results-facing equality bar: everything a consumer can observe
/// must match, with states compared by *materialized* full encodings
/// (a delta arena is a different container than a plain one, but must
/// hold the identical state sequence).
fn assert_same_results(plain: &Exploration, compressed: &Exploration, ctx: &str) {
    let (p, c) = (&plain.report, &compressed.report);
    assert_eq!(p.states, c.states, "{ctx}: state count");
    assert_eq!(p.transitions, c.transitions, "{ctx}: transition count");
    assert_eq!(p.depth, c.depth, "{ctx}: depth");
    assert_eq!(p.terminal_states, c.terminal_states, "{ctx}: terminals");
    assert_eq!(p.violations.len(), c.violations.len(), "{ctx}: violations");
    assert_eq!(p.deadlocks.len(), c.deadlocks.len(), "{ctx}: deadlocks");
    assert_eq!(p.rule_firings, c.rule_firings, "{ctx}: firing counts");
    assert_eq!(
        plain.successor_counts, compressed.successor_counts,
        "{ctx}: successor counts"
    );
    let (mut pb, mut cb) = (Vec::new(), Vec::new());
    for id in 0..plain.arena.len() {
        pb.clear();
        cb.clear();
        plain.arena.append_full_bytes(id, &mut pb);
        compressed.arena.append_full_bytes(id, &mut cb);
        assert_eq!(pb, cb, "{ctx}: state {id} materializes differently");
    }
    for (pv, cv) in p.violations.iter().zip(&c.violations) {
        assert_eq!(pv.property, cv.property, "{ctx}: violated property");
        assert_eq!(pv.detail, cv.detail, "{ctx}: violation detail");
        assert_eq!(pv.trace.steps.len(), cv.trace.steps.len(), "{ctx}: trace length");
        for (ps, cs) in pv.trace.steps.iter().zip(&cv.trace.steps) {
            assert_eq!(ps.rule, cs.rule, "{ctx}: trace rule");
            assert_eq!(ps.state, cs.state, "{ctx}: trace state");
        }
    }
}

/// The N=4 strict grid of the acceptance criterion: ~67k unreduced
/// states — big enough that a small budget truncates the plain store,
/// small enough for a debug-mode test binary.
fn n4_grid() -> SystemState {
    SystemState::initial_n(
        4,
        vec![
            programs::store(1),
            programs::store(2),
            programs::loads(1),
            programs::loads(1),
        ],
    )
}

/// A mixed N=3 grid (~3.4k states) for the cheaper equivalence suites.
fn n3_grid() -> SystemState {
    SystemState::initial_n(
        3,
        vec![
            vec![Instruction::Store(1), Instruction::Load].into(),
            vec![Instruction::Store(2)].into(),
            programs::loads(1),
        ],
    )
}

#[test]
fn small_budget_truncates_plain_but_completes_with_delta_spill() {
    let cfg = ProtocolConfig::strict();
    let init = n4_grid();
    let unrestricted = explore_with(cfg, 4, &init, CheckOptions::default());
    assert!(!unrestricted.report.truncated, "baseline must cover the space");
    assert!(unrestricted.report.states > 10_000, "grid big enough to stress the store");

    // A budget at 60% of the real footprint: the plain store must hit
    // the ladder's hard rung (shrinking slack alone cannot save it),
    // while the compressed store's resident set fits with room.
    let budget = unrestricted.report.memory_bytes * 6 / 10;
    let plain = explore_with(
        cfg,
        4,
        &init,
        CheckOptions { mem_budget: Some(budget), ..CheckOptions::default() },
    );
    assert!(plain.report.truncated_by_memory, "small budget must truncate the plain store");
    assert!(plain.report.states < unrestricted.report.states);

    // Same budget, delta+spill armed: the resident footprint stays
    // under it and the exploration completes with identical results.
    let dir = scratch("acceptance");
    let compressed = explore_with(
        cfg,
        4,
        &init,
        CheckOptions { mem_budget: Some(budget), ..compressed_opts(&dir) },
    );
    assert!(
        !compressed.report.truncated,
        "delta+spill must complete under the budget that truncated the plain store \
         (resident {} of budget {budget})",
        compressed.report.memory_bytes
    );
    assert!(compressed.report.delta_entries > 0, "delta encoding engaged");
    assert!(compressed.report.spilled_extents > 0, "spilling engaged");
    assert_same_results(&unrestricted, &compressed, "acceptance");

    // The compressed resident store really is smaller per state — at
    // least 2× under the PR 7 N=4 snapshot's 46.669 B/state (and under
    // half of the plain baseline measured right here).
    assert!(
        compressed.bytes_per_state() < 46.669 / 2.0,
        "resident bytes/state must halve the PR 7 snapshot: {}",
        compressed.bytes_per_state()
    );
    assert!(
        compressed.bytes_per_state() * 2.0 < unrestricted.bytes_per_state(),
        "compressed store must at least halve resident bytes/state: {} vs {}",
        compressed.bytes_per_state(),
        unrestricted.bytes_per_state()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn violation_traces_replay_identically_through_spilled_extents() {
    // Trace rebuilding walks parent links back through sealed extents —
    // the fault-in path must hand back exactly the stored encodings.
    let cfg = ProtocolConfig::relaxed(Relaxation::SnoopPushesGo);
    let init = SystemState::initial_n(
        3,
        vec![programs::store(42), programs::load(), programs::loads(1)],
    );
    let plain = explore_with(cfg, 3, &init, CheckOptions::default());
    assert!(!plain.report.violations.is_empty(), "SnoopPushesGo grid must violate SWMR");

    let dir = scratch("replay");
    let compressed = explore_with(cfg, 3, &init, compressed_opts(&dir));
    assert!(compressed.report.spilled_extents > 0, "spilling engaged");
    assert_same_results(&plain, &compressed, "replay");
    let rules = Ruleset::with_devices(cfg, 3);
    for v in &compressed.report.violations {
        replay_trace(&rules, &v.trace).expect("trace from a spilled store replays");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deterministic_rerun_with_spill_is_bit_identical() {
    // Two delta+spill runs of the same grid must agree with each other
    // byte for byte (fault-in is deterministic), not just with plain.
    let cfg = ProtocolConfig::strict();
    let init = n3_grid();
    let (d1, d2) = (scratch("det-a"), scratch("det-b"));
    let a = explore_with(cfg, 3, &init, compressed_opts(&d1));
    let b = explore_with(cfg, 3, &init, compressed_opts(&d2));
    assert_eq!(a.report.states, b.report.states);
    assert_eq!(a.report.delta_entries, b.report.delta_entries);
    assert_eq!(a.report.spilled_extents, b.report.spilled_extents);
    assert_same_results(&a, &b, "determinism");
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn sharded_delta_spill_merges_to_the_sequential_arena() {
    let cfg = ProtocolConfig::strict();
    let init = n3_grid();
    let baseline = explore_with(cfg, 3, &init, CheckOptions::default());
    for shards in [2usize, 4] {
        let dir = scratch(&format!("sharded-{shards}"));
        let sharded = explore_with(
            cfg,
            3,
            &init,
            CheckOptions { shards: Some(shards), ..compressed_opts(&dir) },
        );
        let ctx = format!("shards={shards}");
        assert!(sharded.report.delta_entries > 0, "{ctx}: delta engaged across shards");
        assert!(sharded.report.spilled_extents > 0, "{ctx}: spilling engaged across shards");
        // The merged arena materializes to the sequential driver's
        // exact byte layout, so plain arena equality applies.
        assert_eq!(baseline.arena, sharded.arena, "{ctx}: merged arena");
        assert_same_results(&baseline, &sharded, &ctx);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_resume_with_spill_matches_across_reduction_matrix() {
    // The resilience contract survives store compression: interrupt a
    // delta+spill run at a level boundary, resume it (delta+spill still
    // armed, fresh checker), and land byte-identical to an
    // uninterrupted *plain* exploration — for every engine combo.
    let cfg = ProtocolConfig::strict();
    let n = 3;
    let init = n3_grid();
    let eager = |dir: &std::path::Path| {
        let mut policy = CheckpointPolicy::new(dir);
        policy.every = Duration::ZERO;
        policy
    };
    let reducer_for = |combo: Option<ReductionConfig>| -> Option<Arc<dyn Reducer>> {
        let combo = combo?;
        let red = Reduction::new(&Ruleset::with_devices(cfg, n), &init, combo);
        red.is_active().then(|| Arc::new(red) as Arc<dyn Reducer>)
    };
    let combos: Vec<Option<ReductionConfig>> =
        std::iter::once(None).chain(all_engine_combos().into_iter().map(Some)).collect();
    for (i, combo) in combos.iter().enumerate() {
        let ctx = format!("combo#{i} {combo:?}");
        let baseline = explore_with(
            cfg,
            n,
            &init,
            CheckOptions { reduction: reducer_for(*combo), ..CheckOptions::default() },
        );
        assert!(!baseline.report.truncated, "{ctx}: baseline must complete");
        let cut = baseline.report.depth / 2;
        assert!(cut >= 1, "{ctx}: grid too shallow to interrupt");

        let ckpt = scratch(&format!("matrix-ckpt-{i}"));
        let spill = scratch(&format!("matrix-spill-{i}"));
        let interrupted = explore_with(
            cfg,
            n,
            &init,
            CheckOptions {
                max_depth: Some(cut),
                checkpoint: Some(eager(&ckpt)),
                reduction: reducer_for(*combo),
                ..compressed_opts(&spill)
            },
        );
        assert!(interrupted.report.truncated, "{ctx}: interruption must truncate");
        drop(interrupted);

        // Resume into a *fresh spill dir*: checkpoints materialize full
        // encodings, so the writer's extent files are never needed.
        let spill2 = scratch(&format!("matrix-spill2-{i}"));
        let _ = std::fs::remove_dir_all(&spill);
        let resumed = ModelChecker::with_options(
            Ruleset::with_devices(cfg, n),
            CheckOptions {
                checkpoint: Some(eager(&ckpt)),
                reduction: reducer_for(*combo),
                ..compressed_opts(&spill2)
            },
        )
        .explore_resumed(&[&SwmrProperty])
        .expect("resume a delta+spill run");
        assert!(resumed.report.resumed_from.is_some(), "{ctx}: must mark resumption");
        assert_same_results(&baseline, &resumed, &ctx);
        let _ = std::fs::remove_dir_all(&ckpt);
        let _ = std::fs::remove_dir_all(&spill2);
    }
}
