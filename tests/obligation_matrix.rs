//! Integration tests for the paper's Figure 1 / §6–7 reproduction: the
//! proof-obligation matrix.

use cxl_repro::core::instr::Instruction;
use cxl_repro::core::{Invariant, ProtocolConfig, Ruleset};
use cxl_repro::sketch::{ObligationMatrix, SessionStats, Universe};

fn small_grid() -> Vec<(Vec<Instruction>, Vec<Instruction>)> {
    use Instruction::*;
    vec![
        (vec![Store(42)], vec![Load]),
        (vec![Load, Evict], vec![Store(9), Evict]),
    ]
}

#[test]
fn full_invariant_is_inductive_over_reachable_plus_random_universe() {
    let cfg = ProtocolConfig::strict();
    let rules = Ruleset::new(cfg);
    let universe = Universe::reachable(&rules, &small_grid()).with_random(1500, 99);
    let matrix = ObligationMatrix::new(Invariant::for_config(&cfg), rules);
    let report = matrix.discharge(&universe, 4);
    assert!(
        report.inductive(),
        "failed cells: {:?}",
        report
            .counterexamples
            .iter()
            .map(|c| format!("{} × {}", c.conjunct_name, c.rule.name()))
            .collect::<Vec<_>>()
    );
    let stats = SessionStats::from_report(&report);
    assert!(stats.obligations > 5_000);
    assert_eq!(stats.sorries, 0);
}

#[test]
fn swmr_only_invariant_is_not_inductive() {
    // Paper §6: "Unfortunately SWMR is not inductive."
    let cfg = ProtocolConfig::strict();
    let rules = Ruleset::new(cfg);
    let universe = Universe::reachable(&rules, &small_grid()).with_random(3000, 7);
    let matrix = ObligationMatrix::new(Invariant::swmr_only(), rules);
    let report = matrix.discharge(&universe, 4);
    assert!(!report.inductive());
    let cx = report.counterexamples.first().expect("counterexample");
    assert!(cxl_repro::core::swmr(&cx.before));
    assert!(!cxl_repro::core::swmr(&cx.after));
}

#[test]
fn proof_scripts_cover_every_rule() {
    let cfg = ProtocolConfig::strict();
    let rules = Ruleset::new(cfg);
    let universe = Universe::reachable(&rules, &small_grid()[..1]);
    let matrix = ObligationMatrix::new(Invariant::for_config(&cfg), rules.clone());
    let report = matrix.discharge(&universe, 2);
    let script = cxl_repro::sketch::matrix_script(&report);
    for rule in rules.rule_ids() {
        assert!(
            script.contains(&format!("lemma {}_coherent:", rule.name())),
            "script missing rule lemma for {}",
            rule.name()
        );
    }
    assert!(!script.contains("sorry  (*"), "reachable universe discharges fully");
    assert_eq!(report.failed(), 0);
}

#[test]
fn matrix_scale_is_paper_shaped() {
    // Paper: 796 × 68 = 53,332. Ours (fine granularity): hundreds of
    // conjuncts × 138 rules — the same order of magnitude of obligations.
    let cfg = ProtocolConfig::strict();
    let matrix = ObligationMatrix::new(Invariant::fine_grained(&cfg), Ruleset::new(cfg));
    let (n, m) = matrix.dimensions();
    assert!(n >= 200, "fine-grained conjuncts: {n}");
    assert_eq!(m, 138);
    assert!(n * m > 25_000, "obligations: {}", n * m);
}
